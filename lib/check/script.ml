(* Operation scripts: the common language of the crash-state explorer
   and the differential cross-FS fuzzer.

   A script is a list of POSIX-like operations over a small fixed
   namespace (12 file names, 4 directory names).  Alongside the script
   lives an in-memory model of the expected durable state; applying an
   op updates both the model and a real file system and reports any
   disagreement.  Scripts print in a replayable form that
   [trioctl crashcheck --script] parses back, so every counterexample
   the explorer emits can be re-run from the command line. *)

module Fs = Trio_core.Fs_intf
module Rng = Trio_util.Rng
open Trio_core.Fs_types

type op =
  | Create of int (* name index *)
  | Write of int * int (* name, size *)
  | Append of int * int
  | Unlink of int
  | Mkdir of int
  | Rmdir of int
  | Rename of int * int
  | Truncate of int * int

let file_names = 12
let dir_names = 4

let name_of i = Printf.sprintf "/n%02d" (i mod file_names)
let dirname_of i = Printf.sprintf "/d%02d" (i mod dir_names)

let show_op = function
  | Create i -> Printf.sprintf "create %s" (name_of i)
  | Write (i, s) -> Printf.sprintf "write %s %d" (name_of i) s
  | Append (i, s) -> Printf.sprintf "append %s %d" (name_of i) s
  | Unlink i -> Printf.sprintf "unlink %s" (name_of i)
  | Mkdir i -> Printf.sprintf "mkdir %s" (dirname_of i)
  | Rmdir i -> Printf.sprintf "rmdir %s" (dirname_of i)
  | Rename (a, b) -> Printf.sprintf "rename %s %s" (name_of a) (name_of b)
  | Truncate (i, s) -> Printf.sprintf "truncate %s %d" (name_of i) s

let to_string ops = String.concat "; " (List.map show_op ops)

(* Parse the printed form back; accepts exactly what [to_string] emits
   (modulo whitespace). *)
let parse s =
  let parse_name kind prefix name =
    let n = String.length prefix in
    if String.length name > n && String.sub name 0 n = prefix then
      match int_of_string_opt (String.sub name n (String.length name - n)) with
      | Some i when i >= 0 -> Ok i
      | _ -> Error (Printf.sprintf "bad %s name %S" kind name)
    else Error (Printf.sprintf "bad %s name %S (expected %s<nn>)" kind name prefix)
  in
  let file = parse_name "file" "/n" and dir = parse_name "dir" "/d" in
  let int_arg what v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "bad %s %S" what v)
  in
  let ( let* ) = Result.bind in
  let parse_one chunk =
    let words =
      String.split_on_char ' ' (String.trim chunk) |> List.filter (fun w -> w <> "")
    in
    match words with
    | [ "create"; n ] ->
      let* i = file n in
      Ok (Create i)
    | [ "write"; n; s ] ->
      let* i = file n in
      let* s = int_arg "size" s in
      Ok (Write (i, s))
    | [ "append"; n; s ] ->
      let* i = file n in
      let* s = int_arg "size" s in
      Ok (Append (i, s))
    | [ "unlink"; n ] ->
      let* i = file n in
      Ok (Unlink i)
    | [ "mkdir"; d ] ->
      let* i = dir d in
      Ok (Mkdir i)
    | [ "rmdir"; d ] ->
      let* i = dir d in
      Ok (Rmdir i)
    | [ "rename"; a; b ] ->
      let* a = file a in
      let* b = file b in
      Ok (Rename (a, b))
    | [ "truncate"; n; s ] ->
      let* i = file n in
      let* s = int_arg "size" s in
      Ok (Truncate (i, s))
    | _ -> Error (Printf.sprintf "cannot parse op %S" (String.trim chunk))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | chunk :: rest when String.trim chunk = "" -> go acc rest
    | chunk :: rest -> (
      match parse_one chunk with
      | Ok op -> go (op :: acc) rest
      | Error e -> Error e)
  in
  go [] (String.split_on_char ';' s)

(* ------------------------------------------------------------------ *)
(* Generation *)

let gen_op rng =
  (* same op mix the historical qcheck generator used *)
  match Rng.int rng 21 with
  | 0 | 1 | 2 | 3 -> Create (Rng.int rng file_names)
  | 4 | 5 | 6 | 7 -> Write (Rng.int rng file_names, 1 + Rng.int rng 9000)
  | 8 | 9 | 10 -> Append (Rng.int rng file_names, 1 + Rng.int rng 5000)
  | 11 | 12 | 13 -> Unlink (Rng.int rng file_names)
  | 14 | 15 -> Mkdir (Rng.int rng dir_names)
  | 16 -> Rmdir (Rng.int rng dir_names)
  | 17 | 18 -> Rename (Rng.int rng file_names, Rng.int rng file_names)
  | _ -> Truncate (Rng.int rng file_names, Rng.int rng 9001)

let generate rng ~len = List.init len (fun _ -> gen_op rng)

(* ------------------------------------------------------------------ *)
(* Model *)

type model = { files : (string, string) Hashtbl.t; dirs : (string, unit) Hashtbl.t }

let model_create () = { files = Hashtbl.create 16; dirs = Hashtbl.create 4 }

let model_snapshot m =
  let c = model_create () in
  Hashtbl.iter (Hashtbl.replace c.files) m.files;
  Hashtbl.iter (Hashtbl.replace c.dirs) m.dirs;
  c

let names_of_model m =
  Hashtbl.fold (fun k _ acc -> k :: acc) m.files []
  @ Hashtbl.fold (fun k () acc -> k :: acc) m.dirs []
  |> List.sort compare

let model_files m = Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.files [] |> List.sort compare

let touched_paths = function
  | Create i | Write (i, _) | Append (i, _) | Unlink i | Truncate (i, _) -> [ name_of i ]
  | Mkdir i | Rmdir i -> [ dirname_of i ]
  | Rename (a, b) -> [ name_of a; name_of b ]

let content_byte op_idx = Char.chr (Char.code 'a' + (op_idx mod 26))

(* Apply one op to both the fs and the model; both must agree on the
   outcome.  The model is updated *before* the fs runs, so that when a
   crash interrupts the fs operation, the model already reflects the
   op's intended post-state (the atomicity check accepts either the pre-
   or post-state).  Returns [Error detail] on any fs/model divergence. *)
let apply fs model op_idx op =
  let expect_same what fs_result model_ok =
    match (fs_result, model_ok) with
    | Ok _, true | Error _, false -> Ok ()
    | Ok _, false -> Error (Printf.sprintf "%s: fs succeeded but model predicts failure" what)
    | Error e, true ->
      Error
        (Printf.sprintf "%s: fs failed with %s but model predicts success" what
           (errno_to_string e))
  in
  match op with
  | Create i ->
    let path = name_of i in
    let can = not (Hashtbl.mem model.files path) in
    if can then Hashtbl.replace model.files path "";
    let r =
      match fs.Fs.create path 0o644 with
      | Ok fd ->
        let (_ : (unit, errno) result) = fs.Fs.close fd in
        Ok ()
      | Error e -> Error e
    in
    expect_same (show_op op) r can
  | Write (i, size) ->
    let path = name_of i in
    let can = Hashtbl.mem model.files path in
    let data = String.make size (content_byte op_idx) in
    if can then begin
      let old = Hashtbl.find model.files path in
      let merged =
        if String.length old <= size then data
        else data ^ String.sub old size (String.length old - size)
      in
      Hashtbl.replace model.files path merged
    end;
    let r =
      match fs.Fs.open_ path [ O_RDWR ] with
      | Ok fd ->
        let r = fs.Fs.pwrite fd (Bytes.of_string data) 0 in
        let (_ : (unit, errno) result) = fs.Fs.close fd in
        Result.map (fun _ -> ()) r
      | Error e -> Error e
    in
    expect_same (show_op op) r can
  | Append (i, size) ->
    let path = name_of i in
    let can = Hashtbl.mem model.files path in
    let data = String.make size (content_byte op_idx) in
    if can then Hashtbl.replace model.files path (Hashtbl.find model.files path ^ data);
    let r =
      match fs.Fs.open_ path [ O_RDWR ] with
      | Ok fd ->
        let r = fs.Fs.append fd (Bytes.of_string data) in
        let (_ : (unit, errno) result) = fs.Fs.close fd in
        Result.map (fun _ -> ()) r
      | Error e -> Error e
    in
    expect_same (show_op op) r can
  | Unlink i ->
    let path = name_of i in
    let can = Hashtbl.mem model.files path in
    if can then Hashtbl.remove model.files path;
    expect_same (show_op op) (fs.Fs.unlink path) can
  | Mkdir i ->
    let path = dirname_of i in
    let can = not (Hashtbl.mem model.dirs path) in
    if can then Hashtbl.replace model.dirs path ();
    expect_same (show_op op) (fs.Fs.mkdir path 0o755) can
  | Rmdir i ->
    let path = dirname_of i in
    let can = Hashtbl.mem model.dirs path in
    if can then Hashtbl.remove model.dirs path;
    expect_same (show_op op) (fs.Fs.rmdir path) can
  | Rename (a, b) ->
    let src = name_of a and dst = name_of b in
    (* rename onto itself is a successful no-op *)
    let can = Hashtbl.mem model.files src in
    if can && src <> dst then begin
      let content = Hashtbl.find model.files src in
      Hashtbl.remove model.files src;
      Hashtbl.replace model.files dst content
    end;
    expect_same (show_op op) (fs.Fs.rename src dst) can
  | Truncate (i, size) ->
    let path = name_of i in
    let can = Hashtbl.mem model.files path in
    if can then begin
      let old = Hashtbl.find model.files path in
      let next =
        if String.length old >= size then String.sub old 0 size
        else old ^ String.make (size - String.length old) '\000'
      in
      Hashtbl.replace model.files path next
    end;
    expect_same (show_op op) (fs.Fs.truncate path size) can

(* Run a whole script; first divergence wins. *)
let apply_all fs model ops =
  let rec go i = function
    | [] -> Ok ()
    | op :: rest -> (
      match apply fs model i op with Ok () -> go (i + 1) rest | Error _ as e -> e)
  in
  go 0 ops

(* ------------------------------------------------------------------ *)
(* Durable-state comparison *)

let visible_names fs =
  match fs.Fs.readdir "/" with
  | Error e -> Error (Printf.sprintf "readdir /: %s" (errno_to_string e))
  | Ok entries -> Ok (List.map (fun e -> "/" ^ e.d_name) entries |> List.sort compare)

(* Compare a (freshly mounted) fs against the model: every model file
   readable with exact content, every model dir listable, no extra
   top-level entries. *)
let check_model fs model =
  let ( let* ) = Result.bind in
  let* () =
    Hashtbl.fold
      (fun path expected acc ->
        let* () = acc in
        match Fs.read_file fs path with
        | Ok got ->
          if String.equal got expected then Ok ()
          else
            Error
              (Printf.sprintf "%s: content mismatch (%d vs %d bytes, or bytes differ)" path
                 (String.length got) (String.length expected))
        | Error e -> Error (Printf.sprintf "%s: lost (%s)" path (errno_to_string e)))
      model.files (Ok ())
  in
  let* () =
    Hashtbl.fold
      (fun path () acc ->
        let* () = acc in
        match fs.Fs.readdir path with
        | Ok _ -> Ok ()
        | Error e -> Error (Printf.sprintf "dir %s: lost (%s)" path (errno_to_string e)))
      model.dirs (Ok ())
  in
  let* visible = visible_names fs in
  let expected = names_of_model model in
  if visible = expected then Ok ()
  else
    Error
      (Printf.sprintf "namespace [%s] differs from model [%s]" (String.concat " " visible)
         (String.concat " " expected))

(* ------------------------------------------------------------------ *)
(* Shrinking *)

(* Candidate smaller scripts, most aggressive first: drop every op,
   then shrink every size argument (halve, and try 1).  The explorer
   greedily re-checks candidates, so the reported counterexample is a
   local minimum: no op can be dropped and no size shrunk while still
   exhibiting the failure. *)
let shrink_candidates ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let drops =
    List.init n (fun i -> List.filteri (fun j _ -> j <> i) ops)
  in
  let shrink_size = function
    | Write (i, s) when s > 1 -> [ Write (i, s / 2); Write (i, 1) ]
    | Append (i, s) when s > 1 -> [ Append (i, s / 2); Append (i, 1) ]
    | Truncate (i, s) when s > 1 -> [ Truncate (i, s / 2); Truncate (i, 1) ]
    | _ -> []
  in
  let size_shrinks =
    List.concat
      (List.init n (fun i ->
           List.map
             (fun op' -> List.mapi (fun j op -> if j = i then op' else op) ops)
             (shrink_size arr.(i))))
  in
  drops @ size_shrinks
