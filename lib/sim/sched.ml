(* Deterministic discrete-event scheduler.

   Simulated threads are OCaml 5 fibers (effect handlers).  A fiber runs
   until it performs [Delay], [Park] or finishes; the scheduler then pops
   the next event from a binary heap keyed by (virtual time, sequence
   number).  The sequence number makes execution deterministic: events at
   equal timestamps run in creation order.

   Virtual time is in nanoseconds (float). *)

type waker = unit -> unit

type ctx = { cpu : int; tid : int }

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Park : ((unit -> unit) -> unit) -> unit Effect.t
  | Get_ctx : ctx Effect.t
  | Adjust_killable : int -> unit Effect.t
  | Adjust_shield : int -> unit Effect.t

(* Binary min-heap of (time, seq, action). *)
module Heap = struct
  type entry = { time : float; seq : int; action : unit -> unit }

  type t = { mutable a : entry array; mutable len : int }

  let dummy = { time = 0.0; seq = 0; action = ignore }
  let create () = { a = Array.make 256 dummy; len = 0 }
  let is_empty h = h.len = 0
  let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let push h e =
    if h.len = Array.length h.a then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 bigger 0 h.len;
      h.a <- bigger
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    (* sift up *)
    let i = ref (h.len - 1) in
    while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then invalid_arg "Heap.pop: empty";
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    h.a.(h.len) <- dummy;
    (* sift down *)
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && lt h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.len && lt h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
      else continue_ := false
    done;
    top
end

type inj_mode = Inj_kill | Inj_hang

type t = {
  mutable now : float;
  heap : Heap.t;
  mutable seq : int;
  mutable live_fibers : int;
  mutable spawned : int;
  mutable events : int;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stopping : bool;
  (* Process-failure injection: fibers inside a [killable] scope cross a
     "kill point" at every Delay boundary (yield / cpu_work / NVM store
     latency).  When armed, the injector fires at the configured point:
     [Inj_kill] discontinues the fiber with {!Killed} (abrupt process
     death mid-operation), [Inj_hang] drops the continuation so the fiber
     wedges forever while still holding all its resources. *)
  mutable inj_armed : bool;
  mutable inj_mode : inj_mode;
  mutable inj_remaining : int;
  mutable inj_crossed : int;
  mutable hung : int;
  killable_depth : (int, int) Hashtbl.t;
  shield_depth : (int, int) Hashtbl.t;
}

let create () =
  {
    now = 0.0;
    heap = Heap.create ();
    seq = 0;
    live_fibers = 0;
    spawned = 0;
    events = 0;
    failure = None;
    stopping = false;
    inj_armed = false;
    inj_mode = Inj_kill;
    inj_remaining = 0;
    inj_crossed = 0;
    hung = 0;
    killable_depth = Hashtbl.create 8;
    shield_depth = Hashtbl.create 8;
  }

let now t = t.now
let live_fibers t = t.live_fibers
let events_processed t = t.events

let schedule t time action =
  t.seq <- t.seq + 1;
  Heap.push t.heap { time; seq = t.seq; action }

exception Stopped

exception Killed

(* Adjust a per-tid depth counter; absent key means depth 0. *)
let bump tbl tid d =
  let cur = Option.value (Hashtbl.find_opt tbl tid) ~default:0 in
  let v = cur + d in
  if v <= 0 then Hashtbl.remove tbl tid else Hashtbl.replace tbl tid v

let spawn ?(cpu = 0) t f =
  t.live_fibers <- t.live_fibers + 1;
  t.spawned <- t.spawned + 1;
  let tid = t.spawned in
  let ctx = { cpu; tid } in
  let fiber () =
    let open Effect.Deep in
    let forget () =
      Hashtbl.remove t.killable_depth tid;
      Hashtbl.remove t.shield_depth tid
    in
    match_with f ()
      {
        retc =
          (fun () ->
            forget ();
            t.live_fibers <- t.live_fibers - 1);
        exnc =
          (fun e ->
            forget ();
            t.live_fibers <- t.live_fibers - 1;
            match e with
            | Stopped | Killed -> ()
            | e ->
              if t.failure = None then
                t.failure <- Some (e, Printexc.get_raw_backtrace ()));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Delay ns ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if ns < 0.0 then invalid_arg "Sched: negative delay";
                  let at_kill_point =
                    t.inj_armed
                    && Hashtbl.mem t.killable_depth tid
                    && not (Hashtbl.mem t.shield_depth tid)
                  in
                  if at_kill_point && t.inj_remaining <= 0 then begin
                    t.inj_armed <- false;
                    match t.inj_mode with
                    | Inj_kill -> discontinue k Killed
                    | Inj_hang ->
                      (* Drop the continuation: the fiber never resumes but
                         is never torn down either — it wedges holding all
                         its mappings, exactly like a hung process. *)
                      t.hung <- t.hung + 1
                  end
                  else begin
                    if at_kill_point then begin
                      t.inj_crossed <- t.inj_crossed + 1;
                      t.inj_remaining <- t.inj_remaining - 1
                    end;
                    schedule t (t.now +. ns) (fun () ->
                        if t.stopping then discontinue k Stopped else continue k ())
                  end)
            | Park register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let woken = ref false in
                  register (fun () ->
                      if not !woken then begin
                        woken := true;
                        schedule t t.now (fun () ->
                            if t.stopping then discontinue k Stopped else continue k ())
                      end))
            | Get_ctx -> Some (fun (k : (a, unit) continuation) -> continue k ctx)
            | Adjust_killable d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  bump t.killable_depth tid d;
                  continue k ())
            | Adjust_shield d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  bump t.shield_depth tid d;
                  continue k ())
            | _ -> None);
      }
  in
  schedule t t.now fiber

(* Run until the event heap drains, a fiber raises, or [until] virtual ns
   elapse.  Returns the virtual time reached. *)
let run ?until t =
  let deadline = Option.value until ~default:Float.infinity in
  let continue_ = ref true in
  while !continue_ do
    if Heap.is_empty t.heap || t.failure <> None then continue_ := false
    else begin
      let e = Heap.pop t.heap in
      if e.Heap.time > deadline then begin
        t.now <- deadline;
        (* Push the event back: callers may resume the run later. *)
        Heap.push t.heap e;
        continue_ := false
      end
      else begin
        if e.Heap.time > t.now then t.now <- e.Heap.time;
        t.events <- t.events + 1;
        e.Heap.action ()
      end
    end
  done;
  (match t.failure with
  | Some (e, bt) ->
    t.failure <- None;
    Printexc.raise_with_backtrace e bt
  | None -> ());
  t.now

(* Abandon parked/delayed fibers: subsequent resumptions discontinue with
   [Stopped].  Used to tear down infinite service loops (delegation
   threads) at the end of a benchmark run. *)
let stop t = t.stopping <- true

(* ------------------------------------------------------------------ *)
(* Operations usable from inside a fiber. *)

let delay ns = Effect.perform (Delay ns)

let cpu_work ns = delay ns

let yield () = Effect.perform (Delay 0.0)

let park register = Effect.perform (Park register)

let self () = Effect.perform Get_ctx

let current_cpu () = (self ()).cpu

let current_tid () = (self ()).tid

(* ------------------------------------------------------------------ *)
(* Process-failure injection. *)

let arm_kill t ~after =
  if after < 0 then invalid_arg "Sched.arm_kill: negative kill point";
  t.inj_armed <- true;
  t.inj_mode <- Inj_kill;
  t.inj_remaining <- after;
  t.inj_crossed <- 0

let arm_hang t ~after =
  if after < 0 then invalid_arg "Sched.arm_hang: negative kill point";
  t.inj_armed <- true;
  t.inj_mode <- Inj_hang;
  t.inj_remaining <- after;
  t.inj_crossed <- 0

let arm_count t =
  t.inj_armed <- true;
  t.inj_mode <- Inj_kill;
  t.inj_remaining <- max_int;
  t.inj_crossed <- 0

let disarm t = t.inj_armed <- false

let kill_points_crossed t = t.inj_crossed

let hung_fibers t = t.hung

let killable f =
  Effect.perform (Adjust_killable 1);
  Fun.protect ~finally:(fun () -> Effect.perform (Adjust_killable (-1))) f

let shield f =
  Effect.perform (Adjust_shield 1);
  Fun.protect ~finally:(fun () -> Effect.perform (Adjust_shield (-1))) f
