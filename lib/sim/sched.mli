(** Deterministic discrete-event scheduler with effect-based fibers.

    Simulated threads ("fibers") run on a virtual clock measured in
    nanoseconds.  Execution is fully deterministic: a given spawn order
    always yields the same interleaving. *)

type t

type waker = unit -> unit

type ctx = { cpu : int; tid : int }
(** Identity of the running fiber: the simulated CPU it is pinned to and a
    unique thread id. *)

val create : unit -> t

val now : t -> float
(** Current virtual time in nanoseconds. *)

val live_fibers : t -> int
val events_processed : t -> int

val spawn : ?cpu:int -> t -> (unit -> unit) -> unit
(** Start a fiber pinned to simulated CPU [cpu] (default 0). *)

val schedule : t -> float -> (unit -> unit) -> unit
(** Low-level: run a thunk at an absolute virtual time. *)

val run : ?until:float -> t -> float
(** Process events until the heap drains or virtual time [until] is
    reached; returns the virtual time reached.  Re-raises the first
    exception escaping a fiber. *)

val stop : t -> unit
(** Mark the simulation as stopping: every subsequently-resumed fiber is
    discontinued.  Used to tear down infinite service loops. *)

exception Stopped
(** Raised inside fibers on resumption after {!stop}. *)

exception Killed
(** Raised inside a {!killable} fiber when the kill injector fires.  Like
    {!Stopped} it is swallowed by the fiber wrapper rather than recorded
    as a simulation failure: the fiber simply dies mid-operation. *)

(** {2 Process-failure injection}

    Fibers inside a {!killable} scope cross a "kill point" at every
    {!delay} / {!yield} / {!cpu_work} boundary — which includes every
    simulated NVM store, so an armed injector can abandon a LibFS
    operation at any intermediate store.  {!shield} marks kernel
    (controller/MMU) sections: a process cannot die halfway through a
    syscall, only at syscall return. *)

val arm_kill : t -> after:int -> unit
(** Arm the injector: the killable fiber is discontinued with {!Killed}
    at the [after]-th kill point (0-based) it crosses from now on. *)

val arm_hang : t -> after:int -> unit
(** Like {!arm_kill} but the fiber wedges instead of dying: its
    continuation is dropped so it never makes progress again, while its
    resources (mappings, leases, allocations) stay held. *)

val arm_count : t -> unit
(** Arm in counting mode: kill points are counted (see
    {!kill_points_crossed}) but the injector never fires.  Used by the
    explorer's recording pass to learn how many injection points a
    workload crosses. *)

val disarm : t -> unit

val kill_points_crossed : t -> int
(** Kill points crossed since the injector was last armed. *)

val hung_fibers : t -> int
(** Number of fibers wedged by {!arm_hang} since creation. *)

(** {2 Fiber operations} — valid only inside a fiber. *)

val delay : float -> unit
(** Advance this fiber's virtual time by [ns]. *)

val cpu_work : float -> unit
(** Alias of {!delay}: account CPU time spent off-NVM. *)

val yield : unit -> unit

val park : ((unit -> unit) -> unit) -> unit
(** [park register] suspends the fiber; [register waker] must arrange for
    [waker] to be called exactly when the fiber should resume.  Calling
    the waker more than once is harmless. *)

val self : unit -> ctx
val current_cpu : unit -> int
val current_tid : unit -> int

val killable : (unit -> 'a) -> 'a
(** [killable f] runs [f] with the current fiber exposed to the kill/hang
    injector.  Scopes nest; the fiber is a target while at least one
    scope is open and no {!shield} is. *)

val shield : (unit -> 'a) -> 'a
(** [shield f] runs [f] with kill points suppressed for the current
    fiber: kernel-side critical sections (controller syscalls) complete
    or never start, they are not abandoned halfway.  A fiber that parks
    inside a shield stays shielded across the park. *)
