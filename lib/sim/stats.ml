(* Named counters and time accumulators.

   The sharing-cost breakdown of Fig. 8 (map / unmap / verify / rebuild
   fractions) and various benchmark instrumentation read these. *)

type t = { counters : (string, float ref) Hashtbl.t }

let create () = { counters = Hashtbl.create 32 }

let cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.add t.counters name r;
    r

let add t name v =
  let r = cell t name in
  r := !r +. v

let incr t name = add t name 1.0

let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0.0

let reset t = Hashtbl.reset t.counters

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Time a phase and accumulate its virtual duration under [name]. *)
let timed t sched name f =
  let start = Sched.now sched in
  let v = f () in
  add t name (Sched.now sched -. start);
  v

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-32s %.1f@." k v) (to_list t)

(* ------------------------------------------------------------------ *)
(* Latency histograms.

   Log-scale buckets (quarter octaves: four buckets per power of two)
   over virtual nanoseconds.  Observation is O(1); percentiles walk the
   cumulative counts and report the bucket's geometric midpoint, clamped
   to the exact observed [min, max], so p50/p99 carry at most ~19%
   bucketing error while max is exact.  Everything is plain float/int
   arithmetic, so recording is deterministic across runs. *)
module Hist = struct
  let sub_octave = 4.0
  let nbuckets = 256 (* covers [1ns, 2^64 ns); plenty for virtual time *)

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create () =
    { buckets = Array.make nbuckets 0; count = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity }

  let bucket_of v =
    if v <= 1.0 then 0
    else min (nbuckets - 1) (int_of_float (sub_octave *. (log v /. log 2.0)))

  let observe h v =
    h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v

  let count h = h.count
  let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count
  let max_value h = if h.count = 0 then 0.0 else h.vmax
  let min_value h = if h.count = 0 then 0.0 else h.vmin

  (* Smallest bucket whose cumulative count reaches the requested rank;
     [p] in [0, 100]. *)
  let percentile h p =
    if h.count = 0 then 0.0
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100.0 *. float_of_int h.count)) in
        if r < 1 then 1 else min r h.count
      in
      let b = ref 0 and seen = ref 0 in
      (try
         for i = 0 to nbuckets - 1 do
           seen := !seen + h.buckets.(i);
           if !seen >= rank then begin
             b := i;
             raise Exit
           end
         done
       with Exit -> ());
      let v = 2.0 ** ((float_of_int !b +. 0.5) /. sub_octave) in
      Float.min h.vmax (Float.max h.vmin v)
    end

  let reset h =
    Array.fill h.buckets 0 nbuckets 0;
    h.count <- 0;
    h.sum <- 0.0;
    h.vmin <- infinity;
    h.vmax <- neg_infinity

  let pp ppf h =
    if h.count = 0 then Fmt.pf ppf "(empty)"
    else
      Fmt.pf ppf "n=%d p50=%.0fns p99=%.0fns max=%.0fns" h.count (percentile h 50.0)
        (percentile h 99.0) (max_value h)
end
