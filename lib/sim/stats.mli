(** Named counters and virtual-time accumulators (benchmark
    instrumentation; the Fig. 8 sharing-cost breakdown reads these). *)

type t

val create : unit -> t

val add : t -> string -> float -> unit
(** Accumulate [v] under [name]. *)

val incr : t -> string -> unit

val get : t -> string -> float
(** 0 for unknown names. *)

val reset : t -> unit

val to_list : t -> (string * float) list
(** All counters, sorted by name. *)

val timed : t -> Sched.t -> string -> (unit -> 'a) -> 'a
(** Run a thunk and accumulate its virtual duration under [name]. *)

val pp : Format.formatter -> t -> unit

(** Log-bucket latency histograms over virtual nanoseconds: O(1)
    deterministic recording, approximate percentiles (quarter-octave
    buckets, clamped to the exact observed min/max), exact max. *)
module Hist : sig
  type t

  val create : unit -> t

  val observe : t -> float -> unit
  (** Record one sample (virtual ns). *)

  val count : t -> int
  val mean : t -> float

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0, 100]; 0 when empty. *)

  val max_value : t -> float
  val min_value : t -> float
  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end
