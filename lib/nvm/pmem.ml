(* Simulated byte-addressable persistent memory.

   The device is a sparse array of 4 KiB pages spread over NUMA nodes.
   Every access:

   - is permission-checked against the MMU hook (this is the hardware
     enforcement Trio relies on: a LibFS can only touch mapped pages);
   - charges virtual time through the owning node's bandwidth model,
     with remote-access penalties when the accessing fiber's CPU is on
     a different node.

   Persistence model: stores update the volatile image; the previous
   content of each touched 64-byte line is saved until the line is
   flushed ([persist]).  [crash] reverts (or, with an RNG, randomly
   persists) all unflushed lines — exactly the states a real PM device
   could expose after power failure, which is what the crash-consistency
   tests explore.

   Pages are tagged [Meta] or [Data]; when the device is created with
   [store_data:false], data-page contents are not materialized (reads
   return zeros) but their access costs are still charged.  This lets the
   224-thread fio benchmarks run at realistic scale in bounded memory;
   metadata always operates on real bytes. *)

module Sched = Trio_sim.Sched
module Rng = Trio_util.Rng

let page_size = 4096
let line_size = 64
let lines_per_page = page_size / line_size

type kind = Meta | Data

(* Pre-images are tracked in a fixed array indexed by line number, so
   dirtying, clearing and crash-reverting a line are all O(1) — the old
   assoc-list representation rescanned the list per touched line.  The
   array is allocated lazily on first dirtying (clean pages stay small);
   [no_preimages] is the shared empty placeholder.

   [dirty_order] records line indices most-recently-dirtied first, so a
   seeded [crash] draws its RNG in the same order the assoc list used to
   iterate — keeping crash-state exploration reproducible across the
   representation change.  Entries whose [pre] slot was cleared by a
   later [persist] are skipped (and may reappear closer to the head if
   the line is re-dirtied). *)
type page = {
  mutable content : Bytes.t option; (* None = all zeros / unmaterialized *)
  mutable pre : Bytes.t option array; (* line index -> pre-image, 64 slots *)
  mutable ndirty : int; (* count of Some slots in [pre] *)
  mutable dirty_order : int list; (* newest-first line indices, may hold stale entries *)
  mutable kind : kind;
}

let no_preimages : Bytes.t option array = [||]

exception Mmu_fault of { actor : int; page : int; write : bool }

(* Raised by write-injection (see [fail_after_writes]): models the
   process dying at an arbitrary store, for crash-consistency testing. *)
exception Crash_point

(* Typed rejection of an access that falls outside the device (or the
   caller's buffer): callers translate this to EINVAL instead of letting
   an untyped [Invalid_argument] escape. *)
exception Bounds of { what : string; addr : int; len : int }

(* A media error surfaced by the ECC machinery on a load.  [transient]
   faults succeed on retry (the media-fault injector models soft read
   errors); non-transient faults mean the range overlaps latently
   poisoned cachelines and will keep failing until the lines are
   rewritten (scrub repair or an overwrite). *)
exception Media_fault of { addr : int; len : int; transient : bool }

(* Aggregate media-fault counters, exposed for observability. *)
type fault_stats = {
  transient_faults : int; (* reads that failed with a soft error *)
  stuck_stores : int; (* stores whose cells latched wrong (lines poisoned) *)
  poison_read_hits : int; (* reads that hit a poisoned line *)
  poison_repaired : int; (* poisoned lines healed by a rewrite *)
  poisoned_now : int; (* currently poisoned lines, device-wide *)
}

(* One entry of the ordered persistence event log (see [set_recording]):
   everything that changes durable state, in program order.  The crash-
   state exploration engine replays a prefix of this log to reconstruct
   the exact device image — including which cachelines were unflushed —
   at any store boundary. *)
type event =
  | Ev_store of { actor : int; addr : int; data : Bytes.t } (* post-image *)
  | Ev_persist of (int * int) list (* ranges drained by one fence *)
  | Ev_discard of int (* page freed back to the device *)

(* One NUMA node's bandwidth domain: a single active-accessor count with
   separate read/write aggregate-bandwidth curves. *)
type node = {
  mutable active : int;
  mutable peak_active : int;
  mutable bytes_read : float;
  mutable bytes_written : float;
}

type t = {
  sched : Sched.t;
  topo : Numa.t;
  profile : Perf.profile;
  pages_per_node : int;
  store_data : bool;
  pages : (int, page) Hashtbl.t;
  nodes : node array;
  mutable perm_check : actor:int -> page:int -> write:bool -> bool;
  mutable store_hook : int -> unit;
      (* called with the page number of every content mutation — stores
         (any actor), poison, crash reverts, discards.  The MMU's dirty
         write-set hangs off this: anything that can change a page's
         bytes must invalidate incremental-verification snapshots. *)
  mutable persist_count : int;
  mutable crash_count : int;
  mutable mmu_checks : int;
  mutable dirty_total : int; (* unflushed lines, device-wide (O(1) [dirty_lines]) *)
  (* countdown of non-kernel stores until a Crash_point is raised;
     negative = disabled *)
  mutable fail_writes_after : int;
  (* ordered store/persist event log (newest-first; see [set_recording]) *)
  mutable recording : bool;
  mutable events_rev : event list;
  mutable event_count : int;
  mutable user_store_count : int; (* recorded stores by non-kernel actors *)
  (* --- media-fault plane (see "Media faults" below) --- *)
  poison : (int * int, unit) Hashtbl.t; (* (page, line) -> poisoned *)
  mutable fault_rng : Rng.t option; (* None = probabilistic injection off *)
  mutable transient_read_p : float;
  mutable stuck_store_p : float;
  mutable transient_faults : int;
  mutable stuck_stores : int;
  mutable poison_read_hits : int;
  mutable poison_repaired : int;
}

let kernel_actor = 0

let create ~sched ~topo ~profile ~pages_per_node ~store_data () =
  if pages_per_node <= 0 then invalid_arg "Pmem.create";
  {
    sched;
    topo;
    profile;
    pages_per_node;
    store_data;
    pages = Hashtbl.create 4096;
    nodes =
      Array.init (Numa.nodes topo) (fun _ ->
          { active = 0; peak_active = 0; bytes_read = 0.0; bytes_written = 0.0 });
    perm_check = (fun ~actor:_ ~page:_ ~write:_ -> true);
    store_hook = ignore;
    persist_count = 0;
    crash_count = 0;
    mmu_checks = 0;
    dirty_total = 0;
    fail_writes_after = -1;
    recording = false;
    events_rev = [];
    event_count = 0;
    user_store_count = 0;
    poison = Hashtbl.create 16;
    fault_rng = None;
    transient_read_p = 0.0;
    stuck_store_p = 0.0;
    transient_faults = 0;
    stuck_stores = 0;
    poison_read_hits = 0;
    poison_repaired = 0;
  }

let sched t = t.sched
let topo t = t.topo
let total_pages t = t.pages_per_node * Numa.nodes t.topo
let node_of_page t pg = pg / t.pages_per_node
let pages_per_node t = t.pages_per_node
let set_perm_check t f = t.perm_check <- f
let set_store_hook t f = t.store_hook <- f
let persist_count t = t.persist_count

(* ------------------------------------------------------------------ *)
(* Event recording

   When recording is on, every store, fence and page discard is appended
   to an ordered log.  The log plus {!Replay} reconstructs the device
   image (content + unflushed-line set) at any prefix, which is what
   lets the crash-state explorer enumerate crash points without
   snapshotting the device at every store.

   Recording requires [store_data:true]: a device that skips
   materializing data pages would diverge from its own log. *)

let set_recording t on =
  if on && not t.store_data then
    invalid_arg "Pmem.set_recording: requires a store_data:true device";
  t.recording <- on;
  if on then begin
    t.events_rev <- [];
    t.event_count <- 0;
    t.user_store_count <- 0
  end

let recorded_events t = List.rev t.events_rev
let recorded_event_count t = t.event_count
let recorded_user_stores t = t.user_store_count

let record_event t ev =
  t.events_rev <- ev :: t.events_rev;
  t.event_count <- t.event_count + 1;
  match ev with
  | Ev_store { actor; _ } when actor <> kernel_actor ->
    t.user_store_count <- t.user_store_count + 1
  | _ -> ()

let check_perm t ~actor ~page ~write =
  t.mmu_checks <- t.mmu_checks + 1;
  if actor <> kernel_actor && not (t.perm_check ~actor ~page ~write) then
    raise (Mmu_fault { actor; page; write })

let get_page t pg =
  match Hashtbl.find_opt t.pages pg with
  | Some p -> p
  | None ->
    let p = { content = None; pre = no_preimages; ndirty = 0; dirty_order = []; kind = Meta } in
    Hashtbl.add t.pages pg p;
    p

let set_kind t pg kind = (get_page t pg).kind <- kind

let kind_of t pg = match Hashtbl.find_opt t.pages pg with Some p -> p.kind | None -> Meta

(* Drop a freed page's storage (and any pending pre-images). *)
let discard_page t pg =
  (match Hashtbl.find_opt t.pages pg with
  | Some p -> t.dirty_total <- t.dirty_total - p.ndirty
  | None -> ());
  Hashtbl.remove t.pages pg;
  t.store_hook pg;
  if t.recording then record_event t (Ev_discard pg)

(* ------------------------------------------------------------------ *)
(* Cost accounting *)

let node_access t ~node ~write ~bytes =
  let n = t.nodes.(node) in
  n.active <- n.active + 1;
  if n.active > n.peak_active then n.peak_active <- n.active;
  let k = n.active in
  let cpu_node = Numa.node_of_cpu t.topo (Sched.current_cpu ()) in
  let remote = cpu_node <> node in
  let factor =
    if not remote then 1.0
    else if write then t.profile.Perf.remote_write_factor
    else t.profile.Perf.remote_read_factor
  in
  let bw =
    (if write then Perf.write_bandwidth t.profile k else Perf.read_bandwidth t.profile k)
    /. factor
  in
  let latency =
    (if write then t.profile.Perf.write_latency else t.profile.Perf.read_latency) *. factor
  in
  if write then n.bytes_written <- n.bytes_written +. float_of_int bytes
  else n.bytes_read <- n.bytes_read +. float_of_int bytes;
  let share = bw /. float_of_int k in
  Sched.delay (latency +. (float_of_int bytes /. share));
  n.active <- n.active - 1

(* Group a byte range into per-node runs so that latency is charged once
   per node touched, and bandwidth per byte. *)
let iter_node_runs t addr len f =
  if len < 0 || addr < 0 then invalid_arg "Pmem: bad range";
  let node_bytes = t.pages_per_node * page_size in
  let pos = ref addr in
  let remaining = ref len in
  while !remaining > 0 do
    let node = !pos / node_bytes in
    let node_end = (node + 1) * node_bytes in
    let chunk = min !remaining (node_end - !pos) in
    f ~node ~addr:!pos ~len:chunk;
    pos := !pos + chunk;
    remaining := !remaining - chunk
  done

(* ------------------------------------------------------------------ *)
(* Raw (cost-free) byte plumbing *)

let materialize p =
  match p.content with
  | Some b -> b
  | None ->
    let b = Bytes.make page_size '\000' in
    p.content <- Some b;
    b

let save_preimages t p ~off ~len =
  let first_line = off / line_size and last_line = (off + len - 1) / line_size in
  if p.pre == no_preimages then p.pre <- Array.make lines_per_page None;
  for line = first_line to last_line do
    match p.pre.(line) with
    | Some _ -> ()
    | None ->
      let lo = line * line_size in
      let pre =
        match p.content with
        | Some b -> Bytes.sub b lo line_size
        | None -> Bytes.make line_size '\000'
      in
      p.pre.(line) <- Some pre;
      p.ndirty <- p.ndirty + 1;
      p.dirty_order <- line :: p.dirty_order;
      t.dirty_total <- t.dirty_total + 1
  done

let blit_to_page t pg ~off ~src ~src_pos ~len =
  let p = get_page t pg in
  if p.kind = Data && not t.store_data then ()
  else begin
    save_preimages t p ~off ~len;
    let b = materialize p in
    Bytes.blit src src_pos b off len
  end

let blit_from_page t pg ~off ~dst ~dst_pos ~len =
  match Hashtbl.find_opt t.pages pg with
  | Some { content = Some b; _ } -> Bytes.blit b off dst dst_pos len
  | _ -> Bytes.fill dst dst_pos len '\000'

let iter_pages addr len f =
  let pos = ref addr and remaining = ref len in
  while !remaining > 0 do
    let pg = !pos / page_size in
    let off = !pos mod page_size in
    let chunk = min !remaining (page_size - off) in
    f ~pg ~off ~chunk ~done_:(len - !remaining);
    pos := !pos + chunk;
    remaining := !remaining - chunk
  done

(* ------------------------------------------------------------------ *)
(* Media faults

   An injectable model of the ways real PM media fails:

   - latent poison: a cacheline whose ECC is bad.  Loads overlapping it
     fail (non-transient {!Media_fault} for user actors; an explicit
     {!read_ecc} reports the poisoned addresses without raising).
     Poison is media state: it survives crashes and page discards, and
     is healed only by rewriting the line (scrub repair, or any store
     that covers it).
   - transient read errors: with probability [transient_read_p] a user
     load raises a transient {!Media_fault}; the access succeeds on
     retry.
   - stuck-at stores: with probability [stuck_store_p] a user store's
     cells latch wrong — the store appears to complete but every line
     it touched is left poisoned, to be found by the patrol scrubber or
     the next read.

   All draws come from one seeded {!Rng.t}, so under the deterministic
   scheduler a given seed reproduces the exact same fault sequence.
   Kernel-actor accesses never draw faults and read through poison:
   controller verification and scrub repair must stay reliable (the
   kernel consults {!read_ecc}/{!poisoned_lines} to *detect* poison). *)

let iter_lines addr len f =
  if len > 0 then
    for gl = addr / line_size to (addr + len - 1) / line_size do
      f ~page:(gl / lines_per_page) ~line:(gl mod lines_per_page)
    done

let set_fault_injection t ~seed ?(transient_read_p = 0.0) ?(stuck_store_p = 0.0) () =
  if transient_read_p < 0.0 || transient_read_p > 1.0 || stuck_store_p < 0.0 || stuck_store_p > 1.0
  then invalid_arg "Pmem.set_fault_injection: probabilities must be in [0,1]";
  t.fault_rng <- Some (Rng.create seed);
  t.transient_read_p <- transient_read_p;
  t.stuck_store_p <- stuck_store_p

let clear_fault_injection t =
  t.fault_rng <- None;
  t.transient_read_p <- 0.0;
  t.stuck_store_p <- 0.0

let fault_injection_on t = t.fault_rng <> None
let clear_poison t = Hashtbl.reset t.poison

(* Poisoning a line loses its data: the content is overwritten with a
   recognizable garbage pattern (directly, below pre-image tracking —
   media damage is not a store).  Repair therefore needs a good copy
   from somewhere else (a controller checkpoint, the shadow inode, or
   the caller rewriting the range). *)
let poison_line t ~page ~line =
  Hashtbl.replace t.poison (page, line) ();
  t.store_hook page;
  match Hashtbl.find_opt t.pages page with
  | Some { content = Some b; _ } -> Bytes.fill b (line * line_size) line_size '\222'
  | _ -> ()

let is_poisoned t ~page ~line = Hashtbl.mem t.poison (page, line)
let poisoned_count t = Hashtbl.length t.poison

let inject_poison t ~addr ~len =
  iter_lines addr len (fun ~page ~line -> poison_line t ~page ~line)

let poisoned_lines t = Hashtbl.fold (fun k () acc -> k :: acc) t.poison [] |> List.sort compare

let page_poisoned_lines t pg =
  Hashtbl.fold (fun (p, l) () acc -> if p = pg then l :: acc else acc) t.poison []
  |> List.sort compare

let fault_stats t =
  {
    transient_faults = t.transient_faults;
    stuck_stores = t.stuck_stores;
    poison_read_hits = t.poison_read_hits;
    poison_repaired = t.poison_repaired;
    poisoned_now = Hashtbl.length t.poison;
  }

let reset_fault_stats t =
  t.transient_faults <- 0;
  t.stuck_stores <- 0;
  t.poison_read_hits <- 0;
  t.poison_repaired <- 0

(* Line-start byte addresses of poisoned lines overlapping [addr,len). *)
let poisoned_in_range t ~addr ~len =
  if Hashtbl.length t.poison = 0 then []
  else begin
    let acc = ref [] in
    iter_lines addr len (fun ~page ~line ->
        if Hashtbl.mem t.poison (page, line) then
          acc := ((page * page_size) + (line * line_size)) :: !acc);
    List.rev !acc
  end

let fault_on_read t ~actor ~addr ~len =
  if actor <> kernel_actor then begin
    (match t.fault_rng with
    | Some r when t.transient_read_p > 0.0 && Rng.float r 1.0 < t.transient_read_p ->
      t.transient_faults <- t.transient_faults + 1;
      raise (Media_fault { addr; len; transient = true })
    | _ -> ());
    if poisoned_in_range t ~addr ~len <> [] then begin
      t.poison_read_hits <- t.poison_read_hits + 1;
      raise (Media_fault { addr; len; transient = false })
    end
  end

(* A store that touches a poisoned line rewrites its cells and heals it
   — unless this very store's cells latch wrong, in which case every
   touched line ends up poisoned.  Kernel stores never stick, so scrub
   repair writes are reliable. *)
let fault_on_write t ~actor ~addr ~len =
  let stuck =
    actor <> kernel_actor
    &&
    match t.fault_rng with
    | Some r -> t.stuck_store_p > 0.0 && Rng.float r 1.0 < t.stuck_store_p
    | None -> false
  in
  if stuck then begin
    t.stuck_stores <- t.stuck_stores + 1;
    iter_lines addr len (fun ~page ~line -> poison_line t ~page ~line)
  end
  else if Hashtbl.length t.poison > 0 then
    iter_lines addr len (fun ~page ~line ->
        if Hashtbl.mem t.poison (page, line) then begin
          Hashtbl.remove t.poison (page, line);
          t.poison_repaired <- t.poison_repaired + 1
        end)

(* ------------------------------------------------------------------ *)
(* Public accessors: MMU check + cost + data movement *)

let check_bounds t ~what ~addr ~len =
  if addr < 0 || len < 0 || addr + len > total_pages t * page_size then
    raise (Bounds { what; addr; len })

let check_range t ~actor ~addr ~len ~write =
  iter_pages addr len (fun ~pg ~off:_ ~chunk:_ ~done_:_ ->
      check_perm t ~actor ~page:pg ~write)

(* Zero-copy read: the caller supplies the destination buffer, so the
   steady-state data path performs no per-call allocation. *)
let read_into t ~actor ~addr ~dst ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length dst then
    raise (Bounds { what = "Pmem.read_into: buffer"; addr = pos; len });
  check_bounds t ~what:"Pmem.read_into" ~addr ~len;
  check_range t ~actor ~addr ~len ~write:false;
  fault_on_read t ~actor ~addr ~len;
  iter_node_runs t addr len (fun ~node ~addr:_ ~len -> node_access t ~node ~write:false ~bytes:len);
  iter_pages addr len (fun ~pg ~off ~chunk ~done_ ->
      blit_from_page t pg ~off ~dst ~dst_pos:(pos + done_) ~len:chunk)

let read t ~actor ~addr ~len =
  let dst = Bytes.create len in
  read_into t ~actor ~addr ~dst ~pos:0 ~len;
  dst

(* ECC-style read: instead of raising on poison, reports the poisoned
   line addresses so careful readers (patrol scrub, journal recovery)
   can decide what to salvage.  Never draws transient faults — this is
   the deliberate "inspect the media" path, not the hot data path. *)
module Ecc = struct
  type read = Ok of Bytes.t | Poisoned of int list
end

let read_ecc t ~actor ~addr ~len : Ecc.read =
  check_bounds t ~what:"Pmem.read_ecc" ~addr ~len;
  check_range t ~actor ~addr ~len ~write:false;
  match poisoned_in_range t ~addr ~len with
  | [] ->
    let dst = Bytes.create len in
    iter_node_runs t addr len (fun ~node ~addr:_ ~len ->
        node_access t ~node ~write:false ~bytes:len);
    iter_pages addr len (fun ~pg ~off ~chunk ~done_ ->
        blit_from_page t pg ~off ~dst ~dst_pos:done_ ~len:chunk);
    Ecc.Ok dst
  | bad ->
    t.poison_read_hits <- t.poison_read_hits + 1;
    Ecc.Poisoned bad

(* Arm the crash injector: the [n]th subsequent store by a non-kernel
   actor raises {!Crash_point} instead of executing — the process dies
   mid-operation at an arbitrary store boundary. *)
let fail_after_writes t n = t.fail_writes_after <- n

let maybe_crash_point t ~actor =
  if actor <> kernel_actor && t.fail_writes_after >= 0 then begin
    if t.fail_writes_after = 0 then begin
      t.fail_writes_after <- -1;
      raise Crash_point
    end;
    t.fail_writes_after <- t.fail_writes_after - 1
  end

(* Zero-copy write from a caller-owned buffer region. *)
let write_from t ~actor ~addr ~src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    raise (Bounds { what = "Pmem.write_from: buffer"; addr = pos; len });
  check_bounds t ~what:"Pmem.write_from" ~addr ~len;
  maybe_crash_point t ~actor;
  check_range t ~actor ~addr ~len ~write:true;
  iter_node_runs t addr len (fun ~node ~addr:_ ~len -> node_access t ~node ~write:true ~bytes:len);
  iter_pages addr len (fun ~pg ~off ~chunk ~done_ ->
      blit_to_page t pg ~off ~src ~src_pos:(pos + done_) ~len:chunk;
      t.store_hook pg);
  fault_on_write t ~actor ~addr ~len;
  if t.recording then record_event t (Ev_store { actor; addr; data = Bytes.sub src pos len })

let write_sub = write_from

let write t ~actor ~addr ~src = write_from t ~actor ~addr ~src ~pos:0 ~len:(Bytes.length src)

(* Account the cost of moving [len] bytes without touching content: the
   non-materialized fast path used by data-heavy benchmarks.  Media
   faults apply here too — the poison table is independent of whether
   page contents are materialized. *)
let touch t ~actor ~addr ~len ~write =
  check_bounds t ~what:"Pmem.touch" ~addr ~len;
  check_range t ~actor ~addr ~len ~write;
  if write then iter_pages addr len (fun ~pg ~off:_ ~chunk:_ ~done_:_ -> t.store_hook pg);
  if write then fault_on_write t ~actor ~addr ~len else fault_on_read t ~actor ~addr ~len;
  iter_node_runs t addr len (fun ~node ~addr:_ ~len -> node_access t ~node ~write ~bytes:len)

(* clwb + sfence over a range: pre-images in the range are discarded (the
   lines are now on media).  The data movement itself was already charged
   at write time (we model non-temporal stores), so the cost here is the
   fence round trip, independent of the range size. *)
let persist_range t ~addr ~len =
  iter_pages addr len (fun ~pg ~off ~chunk ~done_:_ ->
      match Hashtbl.find_opt t.pages pg with
      | None -> ()
      | Some p when p.ndirty = 0 -> ()
      | Some p ->
        let first_line = off / line_size and last_line = (off + chunk - 1) / line_size in
        for line = first_line to last_line do
          if p.pre.(line) <> None then begin
            p.pre.(line) <- None;
            p.ndirty <- p.ndirty - 1;
            t.dirty_total <- t.dirty_total - 1
          end
        done)

(* The sfence round trip shared by [persist] and [persist_ranges]. *)
let fence t =
  t.persist_count <- t.persist_count + 1;
  Sched.delay t.profile.Perf.flush_latency

(* One fence covering several ranges (a multi-run data write drains the
   whole write-combining pipeline with a single sfence). *)
let persist_ranges t ranges =
  fence t;
  List.iter (fun (addr, len) -> persist_range t ~addr ~len) ranges;
  if t.recording then record_event t (Ev_persist ranges)

let persist t ~addr ~len =
  fence t;
  persist_range t ~addr ~len;
  if t.recording then record_event t (Ev_persist [ (addr, len) ])

(* Convenience: little-endian integer accessors (metadata fields). *)
let read_u64 t ~actor ~addr =
  let b = read t ~actor ~addr ~len:8 in
  Int64.to_int (Bytes.get_int64_le b 0)

let write_u64 t ~actor ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  write t ~actor ~addr ~src:b

let read_u32 t ~actor ~addr =
  let b = read t ~actor ~addr ~len:4 in
  Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF

let write_u32 t ~actor ~addr v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  write t ~actor ~addr ~src:b

(* ------------------------------------------------------------------ *)
(* Crash injection *)

(* Revert every unflushed line to its pre-image; with [rng], each line
   instead survives with probability 1/2 (cachelines evict in arbitrary
   order on real hardware, so any subset of unflushed lines may be
   durable). *)
let crash ?rng t =
  t.crash_count <- t.crash_count + 1;
  Hashtbl.iter
    (fun pg p ->
      if p.ndirty > 0 then begin
        t.store_hook pg;
        (match p.content with
        | None ->
          (* never materialized: nothing to revert, just drop pre-images
             (no RNG draws, matching the assoc-list implementation) *)
          List.iter (fun line -> p.pre.(line) <- None) p.dirty_order
        | Some b ->
          List.iter
            (fun line ->
              match p.pre.(line) with
              | None -> () (* persisted since dirtying, or stale duplicate *)
              | Some pre ->
                let survives = match rng with Some r -> Rng.bool r | None -> false in
                if not survives then Bytes.blit pre 0 b (line * line_size) line_size;
                p.pre.(line) <- None)
            p.dirty_order);
        t.dirty_total <- t.dirty_total - p.ndirty;
        p.ndirty <- 0
      end;
      p.dirty_order <- [])
    t.pages

(* Deterministic crash: the caller names exactly which unflushed lines
   survive.  This is the primitive the crash-state explorer enumerates
   over — [crash ?rng] above is one random point of the space this
   spans. *)
let crash_select t ~survives =
  t.crash_count <- t.crash_count + 1;
  Hashtbl.iter
    (fun pg p ->
      if p.ndirty > 0 then begin
        t.store_hook pg;
        (match p.content with
        | None -> List.iter (fun line -> p.pre.(line) <- None) p.dirty_order
        | Some b ->
          List.iter
            (fun line ->
              match p.pre.(line) with
              | None -> ()
              | Some pre ->
                if not (survives ~page:pg ~line) then
                  Bytes.blit pre 0 b (line * line_size) line_size;
                p.pre.(line) <- None)
            p.dirty_order);
        t.dirty_total <- t.dirty_total - p.ndirty;
        p.ndirty <- 0
      end;
      p.dirty_order <- [])
    t.pages

let dirty_lines t = t.dirty_total

(* Every unflushed line as a sorted [(page, line)] list. *)
let dirty_line_list t =
  Hashtbl.fold
    (fun pg p acc ->
      if p.ndirty = 0 then acc
      else begin
        let acc = ref acc in
        for line = 0 to lines_per_page - 1 do
          if p.pre.(line) <> None then acc := (pg, line) :: !acc
        done;
        !acc
      end)
    t.pages []
  |> List.sort compare

(* Cost-free debug read of one page (no MMU check, no time charged):
   for comparing the device against a replayed image. *)
let peek_page t pg =
  match Hashtbl.find_opt t.pages pg with
  | Some { content = Some b; _ } -> Bytes.copy b
  | _ -> Bytes.make page_size '\000'

let materialized_pages t = Hashtbl.length t.pages

let node_stats t node =
  let n = t.nodes.(node) in
  (n.peak_active, n.bytes_read, n.bytes_written)

(* ------------------------------------------------------------------ *)
(* Replay: reconstruct a device image from an event-log prefix.

   An [image] is a pure byte-level model of the device — pages plus the
   pre-image of every line dirtied since its last fence — maintained by
   the exact rules the live device follows.  Applying the same log to a
   fresh image therefore yields a bit-identical picture of content and
   unflushed state (tested in test_nvm), which is what the crash-state
   explorer uses to enumerate surviving-line subsets at any store index
   without re-running the file system. *)

module Replay = struct
  type image = {
    ipages : (int, Bytes.t) Hashtbl.t;
    ipre : (int * int, Bytes.t) Hashtbl.t; (* (page, line) -> pre-image *)
  }

  let create () = { ipages = Hashtbl.create 256; ipre = Hashtbl.create 64 }

  let page_of img pg =
    match Hashtbl.find_opt img.ipages pg with
    | Some b -> b
    | None ->
      let b = Bytes.make page_size '\000' in
      Hashtbl.add img.ipages pg b;
      b

  let store img ~addr ~data =
    let len = Bytes.length data in
    iter_pages addr len (fun ~pg ~off ~chunk ~done_ ->
        let b = page_of img pg in
        let first_line = off / line_size and last_line = (off + chunk - 1) / line_size in
        for line = first_line to last_line do
          if not (Hashtbl.mem img.ipre (pg, line)) then
            Hashtbl.add img.ipre (pg, line) (Bytes.sub b (line * line_size) line_size)
        done;
        Bytes.blit data done_ b off chunk)

  let persist img ~addr ~len =
    iter_pages addr len (fun ~pg ~off ~chunk ~done_:_ ->
        let first_line = off / line_size and last_line = (off + chunk - 1) / line_size in
        for line = first_line to last_line do
          Hashtbl.remove img.ipre (pg, line)
        done)

  let discard img pg =
    Hashtbl.remove img.ipages pg;
    let stale = Hashtbl.fold (fun (p, l) _ acc -> if p = pg then (p, l) :: acc else acc) img.ipre [] in
    List.iter (Hashtbl.remove img.ipre) stale

  let apply img = function
    | Ev_store { addr; data; _ } -> store img ~addr ~data
    | Ev_persist ranges -> List.iter (fun (addr, len) -> persist img ~addr ~len) ranges
    | Ev_discard pg -> discard img pg

  let apply_all img events = List.iter (apply img) events

  (* Sorted [(page, line)] list of lines that would be unflushed. *)
  let dirty img =
    Hashtbl.fold (fun k _ acc -> k :: acc) img.ipre [] |> List.sort compare

  (* Power failure over the image: surviving lines keep their content,
     the rest revert to their pre-image — mirrors {!crash_select}. *)
  let crash img ~survives =
    let all = dirty img in
    List.iter
      (fun (pg, line) ->
        (if not (survives ~page:pg ~line) then
           match Hashtbl.find_opt img.ipre (pg, line) with
           | Some pre -> Bytes.blit pre 0 (page_of img pg) (line * line_size) line_size
           | None -> ());
        Hashtbl.remove img.ipre (pg, line))
      all

  let page img pg =
    match Hashtbl.find_opt img.ipages pg with
    | Some b -> Bytes.copy b
    | None -> Bytes.make page_size '\000'

  let pages img = Hashtbl.fold (fun pg _ acc -> pg :: acc) img.ipages [] |> List.sort compare
end
