(* Optane-like NVM performance model.

   All the scalability behaviour the paper leans on comes from here:

   - per-node aggregate bandwidth saturates at a modest concurrency and,
     for writes, collapses under excessive concurrent access (the Optane
     XPBuffer/iMC contention pathology reported by the Optane
     characterization studies and exploited by OdinFS/ArckFS delegation);
   - remote (cross-NUMA) access is significantly more expensive,
     especially for writes;
   - reads and writes have asymmetric latency and bandwidth.

   Curves are piecewise-linear over measured-style anchor points; units
   are bytes/ns (= GB/s) for aggregate node bandwidth. *)

type profile = {
  name : string;
  read_latency : float; (* ns, first-byte latency of a read *)
  write_latency : float; (* ns, store + WPQ acceptance *)
  flush_latency : float; (* ns, clwb+sfence round trip *)
  remote_read_factor : float; (* latency & bandwidth penalty for remote reads *)
  remote_write_factor : float;
  read_bw : (float * float) array; (* concurrency -> aggregate bytes/ns *)
  write_bw : (float * float) array;
}

(* Linear interpolation over sorted (x, y) anchors; clamps at the ends. *)
let interp anchors x =
  let n = Array.length anchors in
  if n = 0 then invalid_arg "Perf.interp";
  let x0, y0 = anchors.(0) in
  if x <= x0 then y0
  else begin
    let xl, yl = anchors.(n - 1) in
    if x >= xl then yl
    else begin
      let rec go i =
        let x1, y1 = anchors.(i) and x2, y2 = anchors.(i + 1) in
        if x <= x2 then y1 +. ((y2 -. y1) *. (x -. x1) /. (x2 -. x1)) else go (i + 1)
      in
      go 0
    end
  end

(* Anchors follow the per-socket shapes in the Optane characterization
   literature (6-DIMM socket): reads saturate ~38 GB/s and hold; writes
   peak ~13 GB/s around 4-8 threads and collapse beyond. *)
let optane =
  {
    name = "optane-dcpmm";
    read_latency = 170.0;
    write_latency = 90.0;
    flush_latency = 100.0;
    remote_read_factor = 1.5;
    remote_write_factor = 2.0;
    read_bw =
      [|
        (1.0, 8.0); (2.0, 15.0); (4.0, 26.0); (8.0, 35.0); (16.0, 38.5);
        (32.0, 37.0); (64.0, 33.0); (128.0, 30.0); (224.0, 28.0);
      |];
    write_bw =
      [|
        (1.0, 4.6); (2.0, 8.2); (4.0, 12.5); (8.0, 13.0); (12.0, 11.0);
        (16.0, 9.0); (32.0, 5.5); (64.0, 3.5); (128.0, 2.8); (224.0, 2.4);
      |];
  }

(* A CXL-flash-style device: higher latency, no write collapse.  Used by
   the ablation benches to show Trio is not Optane-specific. *)
let cxl_nvm =
  {
    name = "cxl-nvm";
    read_latency = 400.0;
    write_latency = 300.0;
    flush_latency = 150.0;
    remote_read_factor = 1.2;
    remote_write_factor = 1.2;
    read_bw = [| (1.0, 6.0); (8.0, 24.0); (32.0, 28.0); (224.0, 28.0) |];
    write_bw = [| (1.0, 4.0); (8.0, 16.0); (32.0, 20.0); (224.0, 20.0) |];
  }

let read_bandwidth p k = interp p.read_bw (float_of_int (max 1 k))
let write_bandwidth p k = interp p.write_bw (float_of_int (max 1 k))

(* Weighted fair bandwidth share for one tenant: the fraction of the
   device's peak write bandwidth a tenant with [share] weight may claim
   out of [total] configured weight.  The QoS plane converts this into
   a token refill rate, so per-tenant shares configured in the
   controller translate into per-tenant slices of the same bandwidth
   curves the rest of the simulator charges against. *)
let fair_share p ~share ~total =
  let peak = Array.fold_left (fun acc (_, bw) -> Float.max acc bw) 0.0 p.write_bw in
  let total = Float.max total 1e-9 in
  peak *. (Float.max share 0.0 /. total)

(* CPU-side cost constants shared by all file systems. *)
module Cpu = struct
  let syscall = 600.0 (* ns: kernel entry/exit (trap, spectre mitigations) *)
  let ipc_roundtrip = 3000.0 (* ns: cross-process RPC to a trusted service *)
  let memcpy_per_byte = 0.03 (* ns/byte: DRAM-side copy work *)
  let hash_lookup = 60.0 (* ns: one hash-table probe *)
  let dcache_step = 220.0 (* ns: one VFS path component (dcache + checks) *)
  let libfs_op = 260.0 (* ns: LibFS entry work (arg checks, fd lookup, locks) *)
  let radix_step = 25.0 (* ns: one radix-tree level *)
  let lock_acquire = 18.0 (* ns: uncontended lock *)
  let fd_alloc = 120.0 (* ns: file-descriptor table slot *)
  let page_table_op = 1250.0 (* ns: map or unmap one PTE through the kernel *)
  let page_table_bulk = 90.0 (* ns/page: populating a fresh contiguous VMA *)
  let dentry_check = 100.0 (* ns: verifier work per directory entry *)
  let index_entry_check = 6.0 (* ns: verifier work per index-page slot *)
  let ring_submit = 45.0 (* ns: enqueue one SQE into a shared-memory ring *)
  let ring_reap = 25.0 (* ns: consume one CQE from a shared-memory ring *)
end
