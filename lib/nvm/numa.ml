(* NUMA topology of the simulated machine.

   The paper's testbed: eight sockets, 224 CPUs, one Optane PM region per
   socket.  CPUs [0, cpus_per_node) are node 0, and so on. *)

type t = { nodes : int; cpus_per_node : int }

let create ~nodes ~cpus_per_node =
  if nodes <= 0 || cpus_per_node <= 0 then invalid_arg "Numa.create";
  { nodes; cpus_per_node }

(* The evaluation machine of the paper (§6.1). *)
let paper_machine = create ~nodes:8 ~cpus_per_node:28

let single_node = create ~nodes:1 ~cpus_per_node:28

let nodes t = t.nodes
let cpus_per_node t = t.cpus_per_node
let total_cpus t = t.nodes * t.cpus_per_node

let node_of_cpu t cpu =
  if cpu < 0 then invalid_arg "Numa.node_of_cpu";
  cpu / t.cpus_per_node mod t.nodes

(* Distribute [n] benchmark threads over CPUs the way the paper's harness
   pins them: fill sockets breadth-first so a 28-thread run stays on one
   socket while 224 threads cover the machine. *)
let cpu_of_thread t i =
  let total = total_cpus t in
  i mod total

(* The [local]-th CPU of [node].  The one place the cpu-numbering
   convention (CPUs [node*cpus_per_node, ...) belong to [node]) is
   encoded; per-node striping everywhere else goes through this. *)
let cpu_of_node_local t ~node ~local =
  if node < 0 || node >= t.nodes then invalid_arg "Numa.cpu_of_node_local";
  (node * t.cpus_per_node) + (local mod t.cpus_per_node)
