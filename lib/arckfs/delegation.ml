(* Opportunistic delegation (paper §4.5, following OdinFS).

   Optane collapses under excessive concurrent access and remote-socket
   traffic.  ArckFS therefore routes bulk data accesses through a fixed
   pool of delegation fibers — a few per NUMA node, pinned to that node,
   shared by all LibFSes.  Application fibers place requests in a
   bounded ring buffer (one channel per node) and wait for completion;
   delegation fibers always perform *local* NVM access, and striping a
   file's data across nodes lets one large operation use the aggregate
   bandwidth of the whole machine.

   Small accesses are not worth the round trip and are performed
   directly: reads under 32 KiB, writes under 256 B (the paper's
   thresholds). *)

module Sched = Trio_sim.Sched
module Sync = Trio_sim.Sync
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Perf = Trio_nvm.Perf

type op =
  | Op_write of Bytes.t * int (* source buffer, offset within it *)
  | Op_read of Bytes.t * int (* destination buffer, offset within it *)
  | Op_touch of bool (* cost-only transfer; [true] = write.  Used by the
                        OdinFS baseline model, which shares this engine *)

type request = { actor : int; addr : int; len : int; op : op; done_ : unit Sync.Ivar.t }

type t = {
  sched : Sched.t;
  pmem : Pmem.t;
  chans : request Sync.Chan.t array; (* one ring per node *)
  threads_per_node : int;
  read_threshold : int;
  write_threshold : int;
  stripe_pages : int; (* data striping granularity, in pages *)
  mutable requests : int;
}

let default_threads_per_node = 12
let default_read_threshold = 32 * 1024
let default_write_threshold = 256
let default_stripe_pages = 16 (* 64 KiB: a 2 MiB op spans every node *)

(* Per-request software overhead: ring-buffer enqueue/dequeue + wakeup. *)
let submit_cost = 150.0
let service_cost = 250.0

let worker t chan =
  try
    while true do
      let req = Sync.Chan.recv chan in
      Sched.cpu_work service_cost;
      (match req.op with
      | Op_write (src, pos) -> Pmem.write_from t.pmem ~actor:req.actor ~addr:req.addr ~src ~pos ~len:req.len
      | Op_read (dst, pos) ->
        Pmem.read_into t.pmem ~actor:req.actor ~addr:req.addr ~dst ~pos ~len:req.len
      | Op_touch write -> Pmem.touch t.pmem ~actor:req.actor ~addr:req.addr ~len:req.len ~write);
      Sync.Ivar.fill req.done_ ()
    done
  with Sync.Chan.Closed | Sched.Stopped -> ()

let create ~sched ~pmem ?(threads_per_node = default_threads_per_node)
    ?(read_threshold = default_read_threshold) ?(write_threshold = default_write_threshold)
    ?(stripe_pages = default_stripe_pages) () =
  let topo = Pmem.topo pmem in
  let nodes = Numa.nodes topo in
  let t =
    {
      sched;
      pmem;
      chans = Array.init nodes (fun _ -> Sync.Chan.create 1024);
      threads_per_node;
      read_threshold;
      write_threshold;
      stripe_pages;
      requests = 0;
    }
  in
  for node = 0 to nodes - 1 do
    for i = 0 to threads_per_node - 1 do
      let cpu = Numa.cpu_of_node_local topo ~node ~local:(i mod Numa.cpus_per_node topo) in
      Sched.spawn ~cpu sched (fun () -> worker t t.chans.(node))
    done
  done;
  t

let shutdown t = Array.iter Sync.Chan.close t.chans

let should_delegate t ~write ~len =
  if write then len >= t.write_threshold else len >= t.read_threshold

let node_of_addr t addr = addr / (Pmem.pages_per_node t.pmem * Pmem.page_size)

(* Submit one contiguous run and return its completion ivar. *)
let submit t ~actor ~addr ~len ~op =
  t.requests <- t.requests + 1;
  Sched.cpu_work submit_cost;
  let done_ = Sync.Ivar.create () in
  let node = node_of_addr t addr in
  Sync.Chan.send t.chans.(node) { actor; addr; len; op; done_ };
  done_

(* Perform a list of contiguous runs (addr, buffer offset, length) in
   parallel across delegation fibers, waiting for all completions. *)
let run_all t ~actor ~write ~buf runs =
  let ivars =
    List.map
      (fun (addr, pos, len) ->
        let op = if write then Op_write (buf, pos) else Op_read (buf, pos) in
        submit t ~actor ~addr ~len ~op)
      runs
  in
  List.iter Sync.Ivar.read ivars

(* Cost-only parallel transfer over explicit (addr, len) runs. *)
let touch_all t ~actor ~write runs =
  let ivars =
    List.map (fun (addr, len) -> submit t ~actor ~addr ~len ~op:(Op_touch write)) runs
  in
  List.iter Sync.Ivar.read ivars

let request_count t = t.requests
let stripe_pages t = t.stripe_pages
