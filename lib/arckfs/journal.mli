(** Per-CPU undo journal (paper §4.4, §4.5).

    Complex multi-location updates (rename) log the pre-images of every
    range they will modify, seal the transaction, perform the in-place
    updates, and commit.  Crash recovery rolls back uncommitted
    transactions by replaying pre-images newest-first. *)

type t

val create : pmem:Trio_nvm.Pmem.t -> actor:int -> pages:int array -> t
(** [pages.(cpu)] is the journal page of that CPU (pre-allocated by the
    LibFS on each CPU's local node). *)

val begin_tx : t -> int
(** Start a transaction on the calling CPU's journal; returns the slot
    to pass to the other operations. *)

val log : t -> int -> addr:int -> len:int -> unit
(** Append the current content of [addr, addr+len) as an undo record
    (persisted).  Raises if the journal page would overflow. *)

val seal : t -> int -> unit
(** Publish the logged entries to recovery.  Must be called once, after
    the last {!log} and before the first in-place update. *)

val commit : t -> int -> unit
(** The in-place updates are durable; discard the undo records. *)

val recover : t -> unit
(** Roll back every uncommitted transaction (the LibFS' registered
    crash-recovery program runs this). *)

val set_crash_test_reorder_commit : bool -> unit
(** Test-only fault injection: when enabled, {!commit} skips its persist
    fence, reordering the commit after subsequent stores.  A crash can
    then revert the commit and recovery rolls back a completed
    transaction — the seeded bug the crash-state exploration engine
    (lib/check) must detect.  Never enable outside tests. *)
