(* Per-CPU undo journal (paper §4.4, §4.5).

   Most ArckFS operations are made crash-consistent with the 16-byte
   atomic-update discipline of the core-state layout.  The few complex
   operations (rename) use this undo journal: the pre-images of every
   NVM range the operation will modify are logged and persisted before
   the first modification; on crash, uncommitted transactions are rolled
   back by replaying pre-images in reverse.

   One journal page per CPU removes cross-thread contention (the
   "per-CPU journal" design point the paper borrows from WineFS).

   Journal page format:
     [ count : u64 ]                      -- live entry count; 0 = idle
     entries: [ addr u64 | len u16 | data ... ] back to back. *)

module Sched = Trio_sim.Sched
module Pmem = Trio_nvm.Pmem
module Layout = Trio_core.Layout

type t = {
  pmem : Pmem.t;
  actor : int;
  pages : int array; (* one journal page per CPU *)
  offsets : int array; (* current append offset per CPU (DRAM state) *)
  counts : int array;
}

let header_size = 8
let entry_header = 10

(* Test-only fault injection: when set, [commit] resets the journal
   header WITHOUT its persist fence — the commit store is effectively
   reordered after whatever the LibFS does next, so a crash can revert
   it and recovery will roll back an already-committed transaction.
   This is the seeded bug the crash-state exploration engine must catch
   (see lib/check); it must never be set outside tests. *)
let crash_test_reorder_commit = ref false

let set_crash_test_reorder_commit b = crash_test_reorder_commit := b

let create ~pmem ~actor ~pages =
  let n = Array.length pages in
  let t = { pmem; actor; pages = Array.copy pages; offsets = Array.make n header_size; counts = Array.make n 0 } in
  (* Journal pages start idle. *)
  Array.iter
    (fun pg ->
      Pmem.write_u64 pmem ~actor ~addr:(pg * Pmem.page_size) 0;
      Pmem.persist pmem ~addr:(pg * Pmem.page_size) ~len:8)
    pages;
  t

let cpu_slot t = Sched.current_cpu () mod Array.length t.pages

(* Begin a transaction on this CPU's journal. *)
let begin_tx t =
  let slot = cpu_slot t in
  t.offsets.(slot) <- header_size;
  t.counts.(slot) <- 0;
  slot

(* Log the current content of [addr, addr+len) as an undo record. *)
let log t slot ~addr ~len =
  let page_addr = t.pages.(slot) * Pmem.page_size in
  let off = t.offsets.(slot) in
  if off + entry_header + len > Pmem.page_size then invalid_arg "Journal.log: journal page full";
  let pre = Pmem.read t.pmem ~actor:t.actor ~addr ~len in
  let entry = Bytes.create (entry_header + len) in
  Layout.set_u64 entry 0 addr;
  Layout.set_u16 entry 8 len;
  Bytes.blit pre 0 entry entry_header len;
  Pmem.write t.pmem ~actor:t.actor ~addr:(page_addr + off) ~src:entry;
  Pmem.persist t.pmem ~addr:(page_addr + off) ~len:(entry_header + len);
  t.offsets.(slot) <- off + entry_header + len;
  t.counts.(slot) <- t.counts.(slot) + 1

(* Publish the logged entries to recovery: must be called (once) after
   the last [log] and before the first in-place update. *)
let seal t slot =
  let page_addr = t.pages.(slot) * Pmem.page_size in
  Pmem.write_u64 t.pmem ~actor:t.actor ~addr:page_addr t.counts.(slot);
  Pmem.persist t.pmem ~addr:page_addr ~len:8

(* Commit: the in-place updates are durable, discard the undo records. *)
let commit t slot =
  let page_addr = t.pages.(slot) * Pmem.page_size in
  Pmem.write_u64 t.pmem ~actor:t.actor ~addr:page_addr 0;
  if not !crash_test_reorder_commit then Pmem.persist t.pmem ~addr:page_addr ~len:8;
  t.offsets.(slot) <- header_size;
  t.counts.(slot) <- 0

(* Recovery: roll back every uncommitted transaction by applying undo
   records newest-first.  Runs as the LibFS' registered crash-recovery
   program, before the controller re-verifies write-mapped files.

   Journal reads go through the ECC interface ({!Pmem.read_ecc}): a
   poisoned cacheline inside the log must not crash recovery.  A
   poisoned header means the live-entry count is untrustworthy — the
   slot is treated as idle (entries were pre-images; losing them leaves
   the in-place state, which the verifier then checks).  A poisoned
   record truncates the replay at the damaged entry: undo records are
   applied newest-first, and everything logged *before* the damaged
   record describes state the operation had not yet overwritten. *)
let recover t =
  Array.iteri
    (fun slot pg ->
      let page_addr = pg * Pmem.page_size in
      let count =
        match Pmem.read_ecc t.pmem ~actor:t.actor ~addr:page_addr ~len:header_size with
        | Pmem.Ecc.Ok b -> Layout.get_u64 b 0
        | Pmem.Ecc.Poisoned _ -> 0
      in
      if count > 0 && count < Pmem.page_size then begin
        (* Collect entries in order. *)
        let entries = ref [] in
        let off = ref header_size in
        let read_ecc ~addr ~len =
          match Pmem.read_ecc t.pmem ~actor:t.actor ~addr ~len with
          | Pmem.Ecc.Ok b -> b
          | Pmem.Ecc.Poisoned _ -> raise Exit (* truncate at the damaged record *)
        in
        (try
           for _ = 1 to count do
             let hdr = read_ecc ~addr:(page_addr + !off) ~len:entry_header in
             let addr = Layout.get_u64 hdr 0 in
             let len = Layout.get_u16 hdr 8 in
             if len = 0 || !off + entry_header + len > Pmem.page_size then raise Exit;
             let data = read_ecc ~addr:(page_addr + !off + entry_header) ~len in
             entries := (addr, data) :: !entries;
             off := !off + entry_header + len
           done
         with Exit -> ());
        (* newest-first: !entries is already reversed *)
        List.iter
          (fun (addr, data) ->
            Pmem.write t.pmem ~actor:t.actor ~addr ~src:data;
            Pmem.persist t.pmem ~addr ~len:(Bytes.length data))
          !entries;
        Pmem.write_u64 t.pmem ~actor:t.actor ~addr:page_addr 0;
        Pmem.persist t.pmem ~addr:page_addr ~len:8
      end;
      t.offsets.(slot) <- header_size;
      t.counts.(slot) <- 0)
    t.pages
