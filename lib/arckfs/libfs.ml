(* The ArckFS LibFS: a complete POSIX-like file system design living in
   the application's address space (paper §4.2).

   All data and metadata operations act directly on the mapped core
   state; the kernel controller is only involved for page/inode batch
   allocation, map/unmap, and permission changes.  The auxiliary state —
   everything in this module's [dir_state]/[file_state] — is private,
   rebuilt from the core state on demand, and freely customizable
   (KVFS and FPFS below replace parts of it).

   Concurrency (paper §4.2):
   - regular file: readers-writer inode lock + byte-range lock; one
     thread can extend the file while others write disjoint regions and
     many read;
   - directory: striped readers-writer locks over the name hash table,
     a slot-tail lock for choosing dentry slots, atomic dentry
     activation;
   - per-CPU fd allocation, per-node allocation caches, per-CPU undo
     journal. *)

module Sched = Trio_sim.Sched
module Sync = Trio_sim.Sync
module Stats = Trio_sim.Stats
module Pmem = Trio_nvm.Pmem
module Numa = Trio_nvm.Numa
module Perf = Trio_nvm.Perf
module Layout = Trio_core.Layout
module Dirindex = Trio_core.Dirindex
module Controller = Trio_core.Controller
module Htbl = Trio_util.Htbl
module Radix = Trio_util.Radix
module Rng = Trio_util.Rng
open Trio_core.Fs_types

let page_size = Layout.page_size

type dentry_ref = { mutable e_ino : int; mutable e_addr : int; e_ftype : ftype }

type dir_state = {
  d_ino : int;
  mutable d_addr : int; (* address of this directory's own dentry block *)
  d_names : (string, dentry_ref) Htbl.t;
  d_stripes : Sync.Rwlock.t array;
  (* slot management: pages with free dentry slots + the index tail *)
  mutable d_free_slots : (int * int) list; (* (page, slot) *)
  mutable d_data_pages : int list; (* in index order *)
  mutable d_index_pages : int list;
  mutable d_index_tail : int; (* 0 = directory has no index page yet *)
  mutable d_index_used : int; (* used entries in the tail index page *)
  d_tail_lock : Sync.Mutex.t;
  mutable d_size : int; (* cached live-entry count (the inode size field) *)
  d_size_lock : Sync.Mutex.t;
  mutable d_write_mapped : bool;
  (* B-link name index over this directory (DESIGN.md §4.18).  The
     dentry pages stay the source of truth; the index is a rebuildable
     accelerator, so [d_dindex_root = 0] (unindexed) is always a legal
     state to fall back to. *)
  mutable d_dindex_root : int;
  d_dindex_lock : Sync.Mutex.t; (* serializes tree mutations; readers are lock-free *)
  (* Aux construction is lazy: a fresh [dir_state] knows only the page
     chain and the inode size.  [d_aux_built] marks the one full
     per-slot scan that fills [d_names] and [d_free_slots] — done on
     demand, never on the lookup path of an indexed directory. *)
  mutable d_aux_built : bool;
}

(* Test hook (dircheck --mutate): drop index maintenance on create /
   unlink / rename so the verifier's I5 check can prove it notices. *)
let skip_index_updates = ref false
let set_skip_index_updates v = skip_index_updates := v

type file_state = {
  r_ino : int;
  mutable r_addr : int;
  mutable r_size : int;
  r_index : int Radix.t; (* file page index -> NVM page *)
  mutable r_index_pages : int list;
  mutable r_index_tail : int;
  mutable r_index_used : int;
  mutable r_npages : int;
  r_ilock : Sync.Rwlock.t;
  r_range : Sync.Range_lock.t;
  mutable r_write_mapped : bool;
}

(* A descriptor names the file by inode: after a lease revocation drops
   the cached [file_state], the next operation re-resolves it. *)
type fd_state = { fd_ino : int; mutable fd_addr : int; fd_flags : open_flag list }

type t = {
  ctl : Controller.t;
  pmem : Pmem.t;
  sched : Sched.t;
  topo : Numa.t;
  proc : int;
  cred : cred;
  cache : Alloc_cache.t;
  journal : Journal.t option; (* None: journal pages unavailable; rename degrades to ENOSPC *)
  delegation : Delegation.t option;
  dirs : (int, dir_state) Hashtbl.t;
  files : (int, file_state) Hashtbl.t;
  fds : (int, fd_state) Hashtbl.t;
  fd_counters : int array; (* per-CPU fd allocation, no lock *)
  build_lock : Sync.Mutex.t;
  stats : Stats.t;
  unmap_after_write : bool; (* stress mode for the sharing benchmarks *)
  ring : Controller.ring option;
      (* batched syscall plane: map/unmap ride the submission ring
         instead of one shielded crossing each (DESIGN.md §4.15) *)
  mutable free_backlog : int list; (* pages to return to the kernel, batched *)
  mutable free_backlog_len : int;
  retry_deadline_ns : float; (* total [with_retry] budget before ETIMEDOUT *)
  retry_rng : Rng.t; (* jitter for the media-retry backoff *)
  mutable root : dir_state option;
}

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Mount *)


let mount ~ctl ~proc ~cred ?group ?qos_share ?(retry_deadline_ns = 5.0e6) ?delegation
    ?(unmap_after_write = false) ?ring ?fix () =
  let pmem = Controller.pmem ctl in
  let sched = Controller.sched ctl in
  let topo = Pmem.topo pmem in
  let t_ref = ref None in
  let recovery () =
    match !t_ref with
    | None -> ()
    | Some t ->
      Option.iter Journal.recover t.journal;
      let actor = t.proc in
      (* Reconcile a directory's B-link index with its dentries: a kill
         between the dentry persist and the index update leaves the
         tree missing (or carrying) one key, which verification would
         flag as an I5 violation and roll the whole directory back.
         The dentries are the truth: audit the tree, compare entry
         sets, and rebuild from the leaves on any disagreement (root 0
         when space is short — unindexed is legal; the abandoned nodes
         are re-attributed by the kernel at the next verification). *)
      let reconcile_dindex ~dentry_addr =
        let live = ref [] in
        (match Layout.read_dentry pmem ~actor ~addr:dentry_addr with
        | Some (Ok (inode, _)) ->
          ignore
            (Layout.walk_index_chain pmem ~actor ~head:inode.Layout.index_head
               ~max_pages:(Pmem.total_pages pmem) (fun ~index_page:_ ~entries ~next:_ ->
                 Array.iter
                   (fun pg ->
                     if pg <> 0 then
                       for slot = 0 to Layout.dentries_per_page - 1 do
                         let addr = Layout.dentry_slot_addr pg slot in
                         match Layout.read_dentry pmem ~actor ~addr with
                         | Some (Ok (_, name)) ->
                           live := (Trio_core.Dirindex.hash_name name, addr) :: !live
                         | _ -> ()
                       done)
                   entries))
        | _ -> ());
        let root = Layout.read_dindex_root pmem ~actor ~dentry_addr in
        let consistent =
          root = 0
          ||
          let a = Trio_core.Dirindex.audit pmem ~actor ~root in
          a.Trio_core.Dirindex.au_violations = []
          && List.sort_uniq compare a.Trio_core.Dirindex.au_entries
             = List.sort_uniq compare !live
        in
        if not consistent then begin
          Layout.write_dindex_root pmem ~actor ~dentry_addr 0;
          let alloc () =
            let node = Numa.node_of_cpu t.topo (Sched.current_cpu ()) in
            match Alloc_cache.alloc_page t.cache ~node ~kind:Pmem.Meta with
            | Ok pg -> Some pg
            | Error _ -> None
          in
          let free pg = Alloc_cache.recycle_page t.cache ~page:pg ~kind:Pmem.Meta in
          match Trio_core.Dirindex.build pmem ~actor ~alloc ~free ~entries:!live with
          | Ok (nr, _) when nr <> 0 -> Layout.write_dindex_root pmem ~actor ~dentry_addr nr
          | Ok _ | Error `Nospace -> ()
        end
      in
      (* Reconcile a regular file whose size and index chain were torn
         by the crash: append links the new index entry before bumping
         the size (truncate the reverse), so an interruption between the
         two persisted stores leaves a state that fails I1.  For a
         *fresh* file — created since the last access transfer, so the
         kernel holds no checkpoint for it — failing verification at
         ingestion drops the dentry outright, erasing a create that
         committed long before the crash.  Repair to the nearest
         consistent state instead: unlink index entries past the
         recorded size, or clamp the size down to the pages actually
         linked.  Orphaned data pages stay allocated to this process
         and are reclaimed with it. *)
      let repair_reg ~dentry_addr (inode : Layout.inode) =
        let entries = ref [] in
        ignore
          (Layout.walk_index_chain pmem ~actor ~head:inode.Layout.index_head
             ~max_pages:(Pmem.total_pages pmem) (fun ~index_page ~entries:slots ~next:_ ->
               Array.iteri
                 (fun slot pg -> if pg <> 0 then entries := (index_page, slot) :: !entries)
                 slots));
        let entries = List.rev !entries in
        let npages = List.length entries in
        let needed = (inode.Layout.size + page_size - 1) / page_size in
        if npages > needed then
          List.iteri
            (fun i (index_page, slot) ->
              if i >= needed then begin
                let addr = (index_page * page_size) + (slot * 8) in
                Pmem.write_u64 pmem ~actor ~addr 0;
                Pmem.persist pmem ~addr ~len:8
              end)
            entries
        else if inode.Layout.size > npages * page_size then
          Layout.write_size pmem ~actor ~dentry_addr (npages * page_size)
      in
      (* Recount and repair the size field of every write-mapped
         directory: create/unlink persist the dentry before the size, so
         a crash can leave the count stale by one.  While walking the
         dentries, recurse into fresh children (unknown to the kernel)
         and reconcile their torn state too — the kernel cannot roll
         them back, only drop them. *)
      let seen = Hashtbl.create 16 in
      let rec repair_dir ~dentry_addr (inode : Layout.inode) =
        if not (Hashtbl.mem seen inode.Layout.ino) then begin
          Hashtbl.add seen inode.Layout.ino ();
          let count = ref 0 in
          ignore
            (Layout.walk_index_chain pmem ~actor ~head:inode.Layout.index_head
               ~max_pages:(Pmem.total_pages pmem) (fun ~index_page:_ ~entries ~next:_ ->
                 Array.iter
                   (fun pg ->
                     (* poisoned dentry pages are skipped wholesale: their
                        slots can't be trusted, and the scrubber repairs
                        the page from the controller checkpoint later *)
                     match
                       if pg = 0 then None
                       else
                         match
                           Pmem.read_ecc pmem ~actor ~addr:(pg * page_size) ~len:page_size
                         with
                         | Pmem.Ecc.Ok b -> Some b
                         | Pmem.Ecc.Poisoned _ -> None
                     with
                     | None -> ()
                     | Some b ->
                       for slot = 0 to Layout.dentries_per_page - 1 do
                         if Layout.get_u64 b (slot * Layout.dentry_size) <> 0 then begin
                           incr count;
                           let addr = (pg * page_size) + (slot * Layout.dentry_size) in
                           match Layout.read_dentry pmem ~actor ~addr with
                           | Some (Ok (child, _))
                             when Controller.dentry_addr_of ctl child.Layout.ino = None -> (
                             match child.Layout.ftype with
                             | Reg -> repair_reg ~dentry_addr:addr child
                             | Dir -> repair_dir ~dentry_addr:addr child)
                           | _ -> ()
                         end
                       done)
                   entries));
          if !count <> inode.Layout.size then Layout.write_size pmem ~actor ~dentry_addr !count;
          reconcile_dindex ~dentry_addr
        end
      in
      List.iter
        (fun (ino, dentry_addr, ftype) ->
          (* Files the controller already rolled back to the durable
             snapshot root hold a *certified* state; replaying journal
             repairs over them would resurrect exactly the bytes the
             verifier rejected. *)
          if ftype = Dir && not (Controller.was_snapshot_restored ctl ino) then begin
            match Layout.read_dentry pmem ~actor ~addr:dentry_addr with
            | Some (Ok (inode, _)) -> repair_dir ~dentry_addr inode
            | _ -> ()
          end)
        (Controller.write_mapped_inos ctl ~proc)
  in
  Controller.register_process ctl ~proc ~cred ?group ?qos_share ?fix ~recovery ();
  (* The ring must exist before the first map: its drain fiber is what
     will execute every batched call this mount makes. *)
  let ring =
    match ring with
    | Some depth when depth > 0 -> Some (Controller.ring_setup ctl ~proc ~depth)
    | _ -> None
  in
  let cache = Alloc_cache.create ~ctl ~proc () in
  (* One journal page per CPU, each on that CPU's local node. *)
  let cpus = Numa.total_cpus topo in
  let cpus_per_node = Numa.cpus_per_node topo in
  let jpages = Array.make cpus 0 in
  let jalloc_ok = ref true in
  let jallocated = ref [] in
  for node = 0 to Numa.nodes topo - 1 do
    match Controller.alloc_pages ctl ~proc ~node ~count:cpus_per_node ~kind:Pmem.Meta with
    | Ok pages ->
      jallocated := pages @ !jallocated;
      List.iteri (fun i pg -> jpages.(Numa.cpu_of_node_local topo ~node ~local:i) <- pg) pages
    | Error _ -> jalloc_ok := false
  done;
  (* A full device is not a mount failure: mount without a journal and
     let the one operation that needs it (rename) fail with ENOSPC. *)
  let journal =
    if !jalloc_ok then Some (Journal.create ~pmem ~actor:proc ~pages:jpages)
    else begin
      if !jallocated <> [] then ignore (Controller.free_pages ctl ~proc ~pages:!jallocated);
      None
    end
  in
  let t =
    {
      ctl;
      pmem;
      sched;
      topo;
      proc;
      cred;
      cache;
      journal;
      delegation;
      dirs = Hashtbl.create 64;
      files = Hashtbl.create 64;
      fds = Hashtbl.create 64;
      fd_counters = Array.make (Numa.total_cpus topo) 0;
      build_lock = Sync.Mutex.create ();
      stats = Stats.create ();
      unmap_after_write;
      ring;
      free_backlog = [];
      free_backlog_len = 0;
      retry_deadline_ns;
      retry_rng = Rng.create (0x51ab5 + proc);
      root = None;
    }
  in
  t_ref := Some t;
  t

(* ------------------------------------------------------------------ *)
(* Auxiliary-state construction (paper §4.2 "building auxiliary state") *)

let new_dir_state ~ino ~addr =
  {
    d_ino = ino;
    d_addr = addr;
    d_names = Htbl.create_string ();
    d_stripes = Array.init Htbl.stripes (fun _ -> Sync.Rwlock.create ());
    d_free_slots = [];
    d_data_pages = [];
    d_index_pages = [];
    d_index_tail = 0;
    d_index_used = 0;
    d_tail_lock = Sync.Mutex.create ();
    d_size = 0;
    d_size_lock = Sync.Mutex.create ();
    d_write_mapped = false;
    d_dindex_root = 0;
    d_dindex_lock = Sync.Mutex.create ();
    d_aux_built = false;
  }

(* Read the directory's core state and build the *skeleton* of the
   private aux state: the index-chain pages, the inode's live-entry
   count and the B-link root.  Cost is one dentry read plus one read
   per chain page — independent of the entry count.  The per-slot scan
   that fills [d_names]/[d_free_slots] is deferred to [materialize]
   and never runs on the lookup path of an indexed directory. *)
let build_dir_aux t ~ino ~addr =
  Stats.timed t.stats t.sched "rebuild" (fun () ->
      let d = new_dir_state ~ino ~addr in
      (match Layout.read_dentry t.pmem ~actor:t.proc ~addr with
      | Some (Ok (inode, _)) ->
        d.d_size <- inode.Layout.size;
        d.d_dindex_root <- Layout.read_dindex_root t.pmem ~actor:t.proc ~dentry_addr:addr;
        ignore
          (Layout.walk_index_chain t.pmem ~actor:t.proc ~head:inode.Layout.index_head
             ~max_pages:(Pmem.total_pages t.pmem) (fun ~index_page ~entries ~next ->
               d.d_index_pages <- d.d_index_pages @ [ index_page ];
               if next = 0 then begin
                 d.d_index_tail <- index_page;
                 d.d_index_used <- Array.fold_left (fun acc e -> if e <> 0 then acc + 1 else acc) 0 entries
               end;
               Array.iter
                 (fun pg -> if pg <> 0 then d.d_data_pages <- d.d_data_pages @ [ pg ])
                 entries))
      | _ -> ());
      (* An empty directory's aux is trivially complete. *)
      if d.d_data_pages = [] then d.d_aux_built <- true;
      d)

(* The deferred full scan: fill [d_names] and [d_free_slots] from the
   dentry pages.  Takes every stripe write lock (racing name ops would
   otherwise interleave with the fill) — callers must hold none. *)
let materialize t (d : dir_state) =
  if not d.d_aux_built then begin
    Array.iter Sync.Rwlock.write_lock d.d_stripes;
    try
      if not d.d_aux_built then
      Stats.timed t.stats t.sched "rebuild" (fun () ->
          let size = ref 0 in
          List.iter
            (fun pg ->
              (* a poisoned page contributes neither names nor free
                 slots: its dentries are unreadable but must not be
                 reused before the scrubber restores the page from the
                 controller checkpoint *)
              match
                Pmem.read_ecc t.pmem ~actor:t.proc ~addr:(pg * page_size) ~len:page_size
              with
              | Pmem.Ecc.Poisoned _ -> ()
              | Pmem.Ecc.Ok b ->
                for slot = 0 to Layout.dentries_per_page - 1 do
                  Sched.cpu_work Perf.Cpu.hash_lookup;
                  let block = Bytes.sub b (slot * Layout.dentry_size) Layout.dentry_size in
                  match Layout.decode_dentry block with
                  | None | Some (Error _) ->
                    Sync.Mutex.lock d.d_tail_lock;
                    d.d_free_slots <- (pg, slot) :: d.d_free_slots;
                    Sync.Mutex.unlock d.d_tail_lock
                  | Some (Ok (child, name)) ->
                    incr size;
                    if Htbl.find d.d_names name = None then
                      Htbl.replace d.d_names name
                        {
                          e_ino = child.Layout.ino;
                          e_addr = Layout.dentry_slot_addr pg slot;
                          e_ftype = child.Layout.ftype;
                        }
                done)
            d.d_data_pages;
          Sync.Mutex.lock d.d_size_lock;
          d.d_size <- !size;
          Sync.Mutex.unlock d.d_size_lock;
          d.d_aux_built <- true);
      Array.iter Sync.Rwlock.write_unlock d.d_stripes
    with e ->
      Array.iter Sync.Rwlock.write_unlock d.d_stripes;
      raise e
  end

let build_file_aux t ~ino ~addr =
  Stats.timed t.stats t.sched "rebuild" (fun () ->
      match Layout.read_dentry t.pmem ~actor:t.proc ~addr with
      | Some (Ok (inode, _)) ->
        let f =
          {
            r_ino = ino;
            r_addr = addr;
            r_size = inode.Layout.size;
            r_index = Radix.create ();
            r_index_pages = [];
            r_index_tail = 0;
            r_index_used = 0;
            r_npages = 0;
            r_ilock = Sync.Rwlock.create ();
            r_range = Sync.Range_lock.create ();
            r_write_mapped = false;
          }
        in
        let fpi = ref 0 in
        ignore
          (Layout.walk_index_chain t.pmem ~actor:t.proc ~head:inode.Layout.index_head
             ~max_pages:(Pmem.total_pages t.pmem) (fun ~index_page ~entries ~next ->
               f.r_index_pages <- f.r_index_pages @ [ index_page ];
               if next = 0 then begin
                 f.r_index_tail <- index_page;
                 f.r_index_used <-
                   Array.fold_left (fun acc e -> if e <> 0 then acc + 1 else acc) 0 entries
               end;
               Array.iter
                 (fun pg ->
                   if pg <> 0 then begin
                     Sched.cpu_work Perf.Cpu.radix_step;
                     Radix.insert f.r_index !fpi pg;
                     incr fpi;
                     f.r_npages <- f.r_npages + 1
                   end)
                 entries));
        Ok f
      | _ -> Error EIO)

(* ------------------------------------------------------------------ *)
(* Mapping management *)

(* A file the controller does not know yet is one this LibFS created in a
   directory that has not been verified since: we already hold all its
   pages (allocation grants), so no map call is needed. *)
let known_to_kernel t ino = Option.is_some (Controller.dentry_addr_of t.ctl ino)

(* Every map goes through this dispatcher: the batched path submits to
   the ring and parks on the CQ; the synchronous path is one shielded
   kernel crossing.  Either way the result is the controller's verdict
   for the same op, which is what the batch-drain equivalence tests pin
   down. *)
let map_ctl t ~ino ~write =
  match t.ring with
  | Some r -> Controller.ring_map r ~ino ~write
  | None -> Controller.map_file t.ctl ~proc:t.proc ~ino ~write

let get_root t =
  match t.root with
  | Some d -> Ok d
  | None ->
    Sync.Mutex.lock t.build_lock;
    let result =
      match t.root with
      | Some d -> Ok d
      | None -> (
        match map_ctl t ~ino:Controller.root_ino ~write:false with
        | Error e -> Error e
        | Ok () ->
          let d = build_dir_aux t ~ino:Controller.root_ino ~addr:Controller.root_dentry_addr in
          t.root <- Some d;
          Hashtbl.replace t.dirs Controller.root_ino d;
          Ok d)
    in
    Sync.Mutex.unlock t.build_lock;
    result

let get_dir t ~ino ~addr =
  match Hashtbl.find_opt t.dirs ino with
  | Some d -> Ok d
  | None -> (
    (* Build outside the lock (it involves NVM reads); the insert is
       last-wins under the lock.  A racing duplicate build is harmless:
       both observe the same core state. *)
    let map_result =
      if known_to_kernel t ino then map_ctl t ~ino ~write:false else Ok ()
    in
    match map_result with
    | Error e -> Error e
    | Ok () ->
      let d = build_dir_aux t ~ino ~addr in
      if not (known_to_kernel t ino) then d.d_write_mapped <- true;
      Sync.Mutex.lock t.build_lock;
      let d =
        match Hashtbl.find_opt t.dirs ino with
        | Some existing -> existing
        | None ->
          Hashtbl.replace t.dirs ino d;
          d
      in
      Sync.Mutex.unlock t.build_lock;
      Ok d)

let ensure_dir_writable t (d : dir_state) =
  if d.d_write_mapped then Ok ()
  else if not (known_to_kernel t d.d_ino) then begin
    d.d_write_mapped <- true;
    Ok ()
  end
  else
    match map_ctl t ~ino:d.d_ino ~write:true with
    | Ok () ->
      d.d_write_mapped <- true;
      Ok ()
    | Error e -> Error e

let get_file t ~ino ~addr =
  match Hashtbl.find_opt t.files ino with
  | Some f -> Ok f
  | None -> (
    let map_result =
      if known_to_kernel t ino then map_ctl t ~ino ~write:false else Ok ()
    in
    match map_result with
    | Error e -> Error e
    | Ok () -> (
      match build_file_aux t ~ino ~addr with
      | Error e -> Error e
      | Ok f ->
        if not (known_to_kernel t ino) then f.r_write_mapped <- true;
        Sync.Mutex.lock t.build_lock;
        let f =
          match Hashtbl.find_opt t.files ino with
          | Some existing -> existing
          | None ->
            Hashtbl.replace t.files ino f;
            f
        in
        Sync.Mutex.unlock t.build_lock;
        Ok f))

let ensure_file_writable t (f : file_state) =
  if f.r_write_mapped then Ok ()
  else if not (known_to_kernel t f.r_ino) then begin
    f.r_write_mapped <- true;
    Ok ()
  end
  else
    match map_ctl t ~ino:f.r_ino ~write:true with
    | Ok () ->
      f.r_write_mapped <- true;
      Ok ()
    | Error e -> Error e

(* Drop cached state for a file/dir (after a lease revocation fault or an
   explicit unmap). *)
let drop_aux t ino =
  Hashtbl.remove t.dirs ino;
  Hashtbl.remove t.files ino;
  if ino = Controller.root_ino then t.root <- None

let unmap t ino =
  drop_aux t ino;
  match t.ring with
  | Some r ->
    (* Fire-and-forget: the entry feeds the verification pipeline when
       the drain fiber executes it; this fiber never waits.  Per-ring
       FIFO keeps a later re-map of the same file ordered behind it. *)
    Controller.ring_unmap r ~ino
  | None -> ignore (Controller.unmap_file t.ctl ~proc:t.proc ~ino)

(* Page frees are batched: a truncate-heavy workload (DWTL) would
   otherwise pay one kernel call per page. *)
let free_batch = 64

let flush_free_backlog t =
  if t.free_backlog <> [] then begin
    let pages = t.free_backlog in
    t.free_backlog <- [];
    t.free_backlog_len <- 0;
    (* recycle into the local pools (no MMU churn); fall back to a real
       free if the kernel refuses the transfer *)
    match Controller.recycle_pages t.ctl ~proc:t.proc ~pages with
    | Ok () ->
      List.iter
        (fun pg ->
          Alloc_cache.recycle_page t.cache ~page:pg ~kind:(Pmem.kind_of t.pmem pg))
        pages
    | Error _ -> ignore (Controller.free_pages t.ctl ~proc:t.proc ~pages)
  end

let free_pages_lazily t pages =
  t.free_backlog <- List.rev_append pages t.free_backlog;
  t.free_backlog_len <- t.free_backlog_len + List.length pages;
  if t.free_backlog_len >= free_batch then flush_free_backlog t

(* Retry wrapper: a revoked lease surfaces as an MMU fault; rebuild the
   affected auxiliary state and re-run the operation (paper §3.2: the
   LibFS re-requests access and rebuilds).

   Media faults are handled here too (DESIGN.md §4.11): a *transient*
   read fault is retried with exponential backoff — the soft error
   clears on a later attempt, and the backoff gives a concurrent patrol
   scrub a chance to run.  A *non-transient* fault means the access
   overlaps latently poisoned lines: retrying cannot help, so the
   operation fails cleanly with EIO and the damage is left for the
   scrubber.  A [Bounds] violation is a caller bug, not a device state:
   it surfaces as EINVAL.  Exhausted retries degrade to an errno rather
   than letting the exception escape the LibFS boundary.

   On top of the per-cause retry counts there is a *total* deadline
   budget ([retry_deadline_ns], a mount parameter): under QoS throttling
   every retried syscall crossing can park, so a retry loop that is
   individually bounded can still stretch without limit in wall-clock
   terms.  Once the budget is spent the operation fails terminally with
   ETIMEDOUT — distinct from EAGAIN (retryable, lease churn) so callers
   can tell "try again" from "your tenant is over share; back off".
   Media backoff is exponential with ±25% deterministic jitter, so
   colliding retry loops across tenants decorrelate instead of
   convoying. *)
let max_fault_retries = 16
let max_media_retries = 8
let media_backoff_ns = 200.0

let with_retry t f =
  (* Every op boundary doubles as a liveness signal: in the real system
     the watchdog reads a per-process timestamp the LibFS bumps on entry
     (no syscall), so a process that stops issuing ops goes stale. *)
  Controller.touch t.ctl t.proc;
  let deadline = Sched.now t.sched +. t.retry_deadline_ns in
  let expired () = Sched.now t.sched >= deadline in
  let timed_out () =
    Stats.incr t.stats "libfs.retry.etimedout";
    Error ETIMEDOUT
  in
  let rec go n m =
    try f () with
    | Pmem.Mmu_fault _ when expired () -> timed_out ()
    | Pmem.Mmu_fault { page; _ } when n > 0 ->
      (match Controller.page_owner_of t.ctl page with
      | Controller.In_file ino -> drop_aux t ino
      | _ ->
        (* conservative: forget everything *)
        Hashtbl.reset t.dirs;
        Hashtbl.reset t.files;
        t.root <- None);
      go (n - 1) m
    | Pmem.Mmu_fault _ -> Error EAGAIN
    | Pmem.Media_fault { transient = true; _ } when m > 0 && not (expired ()) ->
      Stats.incr t.stats "libfs.media.retries";
      let base = media_backoff_ns *. float_of_int (1 lsl (max_media_retries - m)) in
      (* jitter in [0.75, 1.25) * base, clipped to the remaining budget *)
      let jittered = base *. (0.75 +. Rng.float t.retry_rng 0.5) in
      Sched.delay (Float.min jittered (Float.max 0.0 (deadline -. Sched.now t.sched)));
      if expired () then timed_out () else go n (m - 1)
    | Pmem.Media_fault { transient = true; _ } when m > 0 -> timed_out ()
    | Pmem.Media_fault _ ->
      Stats.incr t.stats "libfs.media.eio";
      Error EIO
    | Pmem.Bounds _ -> Error EINVAL
  in
  go max_fault_retries max_media_retries

(* ------------------------------------------------------------------ *)
(* Name resolution: aux-table probe, then B-link index descent, then
   linear page scan (DESIGN.md §4.18).

   The descents/splits/range-scan counters live on the *controller's*
   stats (one aggregation point for `trioctl stats`), not the per-mount
   LibFS stats. *)

let kstats t = Controller.stats t.ctl

(* Read a candidate dentry and keep it only if it carries [name]
   (distinct names can share a hash; the index returns all of them). *)
let load_ref t name addr =
  match Layout.read_dentry t.pmem ~actor:t.proc ~addr with
  | Some (Ok (inode, n)) when String.equal n name ->
    Some { e_ino = inode.Layout.ino; e_addr = addr; e_ftype = inode.Layout.ftype }
  | _ -> None

(* Descend the B-link tree for [name].  Lock-free: right-links keep
   concurrent readers safe against in-flight splits.  [Error] means the
   tree is damaged (torn or poisoned node) — callers fall back to
   scanning the dentry pages, which stay the source of truth. *)
let index_find t (d : dir_state) name =
  Dirindex.lookup ~stats:(kstats t) t.pmem ~actor:t.proc ~root:d.d_dindex_root
    ~hash:(Dirindex.hash_name name)
  |> Result.map (fun addrs -> List.find_map (load_ref t name) addrs)

(* Read-only linear fallback when the directory is unindexed or the
   tree is damaged: scan the dentry pages without touching the aux
   tables. *)
let scan_find t (d : dir_state) name =
  List.find_map
    (fun pg ->
      match Pmem.read_ecc t.pmem ~actor:t.proc ~addr:(pg * page_size) ~len:page_size with
      | Pmem.Ecc.Poisoned _ -> None
      | Pmem.Ecc.Ok b ->
        let rec go slot =
          if slot >= Layout.dentries_per_page then None
          else begin
            Sched.cpu_work Perf.Cpu.hash_lookup;
            let block = Bytes.sub b (slot * Layout.dentry_size) Layout.dentry_size in
            match Layout.decode_dentry block with
            | Some (Ok (child, n)) when String.equal n name ->
              Some
                {
                  e_ino = child.Layout.ino;
                  e_addr = Layout.dentry_slot_addr pg slot;
                  e_ftype = child.Layout.ftype;
                }
            | _ -> go (slot + 1)
          end
        in
        go 0)
    d.d_data_pages

(* Uncached resolution past the aux table; the table itself was already
   probed by the caller. *)
let find_slow t (d : dir_state) name =
  if d.d_aux_built then None
  else if d.d_dindex_root <> 0 then
    match index_find t d name with Ok r -> r | Error _ -> scan_find t d name
  else if d.d_size = 0 then None
  else scan_find t d name

(* Full resolution, safe to call while holding [name]'s stripe lock in
   either mode (the probe is a plain table read; tree reads are
   lock-free; nothing is cached). *)
let find_ref t (d : dir_state) name =
  Sched.cpu_work Perf.Cpu.hash_lookup;
  match Htbl.find d.d_names name with Some r -> Some r | None -> find_slow t d name

(* Resolution for callers holding no stripe lock: hits found past the
   table are cached under the stripe write lock for next time. *)
let lookup t (d : dir_state) name =
  Sched.cpu_work Perf.Cpu.hash_lookup;
  let stripe = Htbl.stripe_of_key d.d_names name in
  match Sync.Rwlock.with_read d.d_stripes.(stripe) (fun () -> Htbl.find d.d_names name) with
  | Some r -> Some r
  | None -> (
    match find_slow t d name with
    | None -> None
    | Some r ->
      Sync.Rwlock.with_write d.d_stripes.(stripe) (fun () ->
          match Htbl.find d.d_names name with
          | Some r -> Some r
          | None ->
            Htbl.replace d.d_names name r;
            Some r))

let resolve_dir t components =
  let* root = get_root t in
  let rec walk (d : dir_state) = function
    | [] -> Ok d
    | name :: rest -> (
      (* per component: aux-table probe + stripe lock + dir-state lookup *)
      Sched.cpu_work (Perf.Cpu.hash_lookup +. Perf.Cpu.lock_acquire);
      match lookup t d name with
      | None -> Error ENOENT
      | Some { e_ftype = Reg; _ } -> Error ENOTDIR
      | Some ({ e_ftype = Dir; _ } as r) ->
        let* child = get_dir t ~ino:r.e_ino ~addr:r.e_addr in
        walk child rest)
  in
  walk root components

(* Split a path into (parent directory state, basename). *)
let resolve_parent t path =
  match dirname_basename path with
  | None -> Error EINVAL
  | Some (dir_components, name) ->
    if not (valid_name name) then Error (if String.length name > Layout.name_max then ENAMETOOLONG else EINVAL)
    else
      let* d = resolve_dir t dir_components in
      Ok (d, name)

(* ------------------------------------------------------------------ *)
(* Directory-index maintenance *)

(* Drop a damaged / unmaintainable index: persist root = 0 (unindexed
   is legal; verifier check I5 skips it) and leave the old nodes for
   the kernel to re-attribute at the next verification. *)
let drop_index t (d : dir_state) =
  if d.d_dindex_root <> 0 then begin
    Layout.write_dindex_root t.pmem ~actor:t.proc ~dentry_addr:d.d_addr 0;
    d.d_dindex_root <- 0
  end

let dindex_alloc t () =
  let node = Numa.node_of_cpu t.topo (Sched.current_cpu ()) in
  match Alloc_cache.alloc_page t.cache ~node ~kind:Pmem.Meta with
  | Ok pg -> Some pg
  | Error _ -> None

let dindex_free t pg = Alloc_cache.recycle_page t.cache ~page:pg ~kind:Pmem.Meta

(* Insert (name -> dentry address) into the directory's index — called
   *after* the dentry itself is persisted (truth first, accelerator
   second; a crash between the two is reconciled at recovery).  A first
   insert builds the root leaf and swings the dentry's root word.
   Failure is never fatal: out of space or damaged, the directory just
   drops to unindexed. *)
let index_insert t (d : dir_state) name addr =
  if not !skip_index_updates then
    Sync.Mutex.with_lock d.d_dindex_lock (fun () ->
        match
          Dirindex.insert ~stats:(kstats t) t.pmem ~actor:t.proc ~alloc:(dindex_alloc t)
            ~free:(dindex_free t) ~root:d.d_dindex_root
            ~hash:(Dirindex.hash_name name) ~addr
        with
        | Ok (root, _fresh) ->
          if root <> d.d_dindex_root then begin
            Layout.write_dindex_root t.pmem ~actor:t.proc ~dentry_addr:d.d_addr root;
            d.d_dindex_root <- root
          end
        | Error (`Nospace | `Damaged _) -> drop_index t d
        | exception Pmem.Media_fault _ ->
          (* a media fault mid-maintenance leaves the tree suspect; the
             dentry is already durable, so unindexed is the safe state *)
          drop_index t d)

(* Remove (name -> address) after the dentry tombstone is persisted. *)
let index_delete t (d : dir_state) name addr =
  if (not !skip_index_updates) && d.d_dindex_root <> 0 then
    Sync.Mutex.with_lock d.d_dindex_lock (fun () ->
        match
          Dirindex.delete t.pmem ~actor:t.proc ~root:d.d_dindex_root
            ~hash:(Dirindex.hash_name name) ~addr
        with
        | Ok () -> ()
        | Error _ | exception Pmem.Media_fault _ -> drop_index t d)

(* Re-index an unindexed-nonempty directory from its materialized aux
   table (scrub gave up under pressure, a snapshot restore dropped the
   tree, or a crash left it detached). *)
let rebuild_index t (d : dir_state) =
  if d.d_dindex_root = 0 && d.d_aux_built && d.d_size > 0 then
    Sync.Mutex.with_lock d.d_dindex_lock (fun () ->
        if d.d_dindex_root = 0 then
          let entries =
            Htbl.fold d.d_names [] (fun acc name r -> (Dirindex.hash_name name, r.e_addr) :: acc)
          in
          match
            Dirindex.build ~stats:(kstats t) t.pmem ~actor:t.proc ~alloc:(dindex_alloc t)
              ~free:(dindex_free t) ~entries
          with
          | Ok (root, _) when root <> 0 ->
            Layout.write_dindex_root t.pmem ~actor:t.proc ~dentry_addr:d.d_addr root;
            d.d_dindex_root <- root
          | Ok _ | Error `Nospace | exception Pmem.Media_fault _ -> ())

(* Mutating name ops need certainty about existence; an
   unindexed-nonempty directory only offers it through the full scan.
   Opportunistically re-index while we are at it. *)
let ensure_resolvable t (d : dir_state) =
  if (not d.d_aux_built) && d.d_dindex_root = 0 && d.d_size > 0 then begin
    materialize t d;
    rebuild_index t d
  end

(* ------------------------------------------------------------------ *)
(* Directory slot management *)

(* Claim a free dentry slot, possibly growing the directory by one data
   page (and, if the index tail is full, one index page). *)
let claim_slot t (d : dir_state) =
  Sync.Mutex.lock d.d_tail_lock;
  Sched.cpu_work Perf.Cpu.lock_acquire;
  let finish slot =
    Sync.Mutex.unlock d.d_tail_lock;
    Ok slot
  in
  match d.d_free_slots with
  | (pg, slot) :: rest ->
    d.d_free_slots <- rest;
    finish (pg, slot)
  | [] -> (
    let node = Numa.node_of_cpu t.topo (Sched.current_cpu ()) in
    match Alloc_cache.alloc_page t.cache ~node ~kind:Pmem.Meta with
    | Error e ->
      Sync.Mutex.unlock d.d_tail_lock;
      Error e
    | Ok data_pg -> (
      (* Link the fresh dentry page into the index chain. *)
      let link_ok =
        if d.d_index_tail = 0 || d.d_index_used >= Layout.index_entries then begin
          match Alloc_cache.alloc_page t.cache ~node ~kind:Pmem.Meta with
          | Error e -> Error e
          | Ok idx_pg ->
            if d.d_index_tail = 0 then
              Layout.write_index_head t.pmem ~actor:t.proc ~dentry_addr:d.d_addr idx_pg
            else Layout.write_index_next t.pmem ~actor:t.proc ~page:d.d_index_tail idx_pg;
            d.d_index_pages <- d.d_index_pages @ [ idx_pg ];
            d.d_index_tail <- idx_pg;
            d.d_index_used <- 0;
            Ok ()
        end
        else Ok ()
      in
      match link_ok with
      | Error e ->
        Alloc_cache.recycle_page t.cache ~page:data_pg ~kind:Pmem.Meta;
        Sync.Mutex.unlock d.d_tail_lock;
        Error e
      | Ok () ->
        Layout.write_index_entry t.pmem ~actor:t.proc ~page:d.d_index_tail d.d_index_used data_pg;
        d.d_index_used <- d.d_index_used + 1;
        d.d_data_pages <- d.d_data_pages @ [ data_pg ];
        d.d_free_slots <-
          List.init (Layout.dentries_per_page - 1) (fun i -> (data_pg, i + 1));
        finish (data_pg, 0)))

let release_slot (d : dir_state) ~page ~slot =
  Sync.Mutex.lock d.d_tail_lock;
  d.d_free_slots <- (page, slot) :: d.d_free_slots;
  Sync.Mutex.unlock d.d_tail_lock

(* Adjust the directory's live-entry count (its inode [size] field) with
   a read-modify-write under a lock: this is the shared hot field that
   limits create scalability in one directory (MWCM). *)
let bump_dir_size t (d : dir_state) delta =
  Sync.Mutex.lock d.d_size_lock;
  d.d_size <- d.d_size + delta;
  Layout.write_size t.pmem ~actor:t.proc ~dentry_addr:d.d_addr d.d_size;
  Sync.Mutex.unlock d.d_size_lock

(* ------------------------------------------------------------------ *)
(* Create / mkdir *)

let now_ns t = int_of_float (Sched.now t.sched)

let create_entry t (d : dir_state) name ~ftype ~mode =
  let* () = ensure_dir_writable t d in
  ensure_resolvable t d;
  let stripe = Htbl.stripe_of_key d.d_names name in
  (* with_write, not bare lock/unlock: the existence probe descends the
     index, and a transient media fault unwinding through a held stripe
     lock would deadlock the retry *)
  let result =
    Sync.Rwlock.with_write d.d_stripes.(stripe) (fun () ->
        Sched.cpu_work Perf.Cpu.hash_lookup;
        if find_ref t d name <> None then Error EEXIST
        else
          let ino = Alloc_cache.alloc_ino t.cache in
          match claim_slot t d with
          | Error e -> Error e
          | Ok (pg, slot) ->
            let addr = Layout.dentry_slot_addr pg slot in
            let inode =
              {
                Layout.ino;
                ftype;
                mode = mode land 0o7777;
                uid = t.cred.uid;
                gid = t.cred.gid;
                size = 0;
                index_head = 0;
                mtime = now_ns t;
                ctime = now_ns t;
              }
            in
            Layout.write_dentry_atomic t.pmem ~actor:t.proc ~addr ~inode ~name;
            let r = { e_ino = ino; e_addr = addr; e_ftype = ftype } in
            Htbl.replace d.d_names name r;
            Ok r)
  in
  match result with
  | Ok r ->
    index_insert t d name r.e_addr;
    bump_dir_size t d 1;
    Ok r
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* File data path *)

(* Gather the NVM runs covering [off, off+len) of the file, merging
   physically contiguous pages so large I/O is issued in few requests. *)
let collect_runs (f : file_state) ~off ~len =
  let runs = ref [] in
  let pos = ref off and remaining = ref len in
  let hole = ref false in
  while !remaining > 0 && not !hole do
    let fpi = !pos / page_size in
    Sched.cpu_work Perf.Cpu.radix_step;
    (match Radix.find f.r_index fpi with
    | None ->
      (* hole within size: the index chain is damaged (torn or media
         loss); surface EIO instead of throwing at the caller *)
      hole := true
    | Some pg ->
      let in_page = !pos mod page_size in
      let chunk = min !remaining (page_size - in_page) in
      let addr = (pg * page_size) + in_page in
      (match !runs with
      | (raddr, rpos, rlen) :: rest when raddr + rlen = addr ->
        runs := (raddr, rpos, rlen + chunk) :: rest
      | _ -> runs := (addr, !pos - off, chunk) :: !runs);
      pos := !pos + chunk;
      remaining := !remaining - chunk)
  done;
  if !hole then Error EIO else Ok (List.rev !runs)

let do_data_io t ~write ~buf runs ~len =
  Sched.cpu_work (Perf.Cpu.memcpy_per_byte *. float_of_int len);
  match t.delegation with
  | Some dlg when Delegation.should_delegate dlg ~write ~len ->
    Delegation.run_all dlg ~actor:t.proc ~write ~buf runs
  | _ ->
    List.iter
      (fun (addr, pos, chunk) ->
        if write then Pmem.write_from t.pmem ~actor:t.proc ~addr ~src:buf ~pos ~len:chunk
        else Pmem.read_into t.pmem ~actor:t.proc ~addr ~dst:buf ~pos ~len:chunk)
      runs

(* Data persistence: ArckFS persists data writes before returning (§4.4);
   the bandwidth cost was charged by the writes, a single fence drains
   every run. *)
let persist_runs t runs =
  match runs with
  | [] -> ()
  | runs -> Pmem.persist_ranges t.pmem (List.map (fun (addr, _, len) -> (addr, len)) runs)

(* Stripe placement is salted by inode so small files spread over all
   nodes instead of piling onto node 0. *)
let node_for_data_page t (f : file_state) fpi =
  match t.delegation with
  | Some dlg ->
    (f.r_ino + (fpi / Delegation.stripe_pages dlg)) mod Numa.nodes t.topo
  | None -> Numa.node_of_cpu t.topo (Sched.current_cpu ())

(* Extend the file to cover pages up to [up_to_fpi]; caller holds the
   inode write lock.

   Bulk extensions (large appends, truncate-up, fio preallocation) are
   the common case, so pages are allocated in per-node batches and the
   index entries of each index page are written as one NVM store. *)
let extend_file t (f : file_state) ~up_to_fpi =
  let start = f.r_npages in
  let count = up_to_fpi - start + 1 in
  if count <= 0 then Ok ()
  else begin
    (* allocate data pages, batching consecutive same-node requests *)
    let pages = Array.make count 0 in
    let rec allocate fpi =
      if fpi > up_to_fpi then Ok ()
      else begin
        let node = node_for_data_page t f fpi in
        let run_len = ref 1 in
        while
          fpi + !run_len <= up_to_fpi && node_for_data_page t f (fpi + !run_len) = node
        do
          incr run_len
        done;
        match Alloc_cache.alloc_pages t.cache ~node ~kind:Pmem.Data ~count:!run_len with
        | Error e -> Error e
        | Ok got ->
          List.iteri (fun i pg -> pages.(fpi - start + i) <- pg) got;
          allocate (fpi + !run_len)
      end
    in
    match allocate start with
    | Error e -> Error e
    | Ok () ->
      (* link into the index chain, one store per touched index page *)
      let i = ref 0 in
      let result = ref (Ok ()) in
      while !i < count && !result = Ok () do
        if f.r_index_tail = 0 || f.r_index_used >= Layout.index_entries then begin
          let mnode = Numa.node_of_cpu t.topo (Sched.current_cpu ()) in
          match Alloc_cache.alloc_page t.cache ~node:mnode ~kind:Pmem.Meta with
          | Error e -> result := Error e
          | Ok idx_pg ->
            if f.r_index_tail = 0 then
              Layout.write_index_head t.pmem ~actor:t.proc ~dentry_addr:f.r_addr idx_pg
            else Layout.write_index_next t.pmem ~actor:t.proc ~page:f.r_index_tail idx_pg;
            f.r_index_pages <- f.r_index_pages @ [ idx_pg ];
            f.r_index_tail <- idx_pg;
            f.r_index_used <- 0
        end;
        if !result = Ok () then begin
          let slot = f.r_index_used in
          let span = min (count - !i) (Layout.index_entries - slot) in
          let buf = Bytes.create (span * 8) in
          for j = 0 to span - 1 do
            let pg = pages.(!i + j) in
            Layout.set_u64 buf (j * 8) pg;
            Radix.insert f.r_index (start + !i + j) pg
          done;
          Pmem.write t.pmem ~actor:t.proc ~addr:(Layout.index_entry_addr f.r_index_tail slot)
            ~src:buf;
          Pmem.persist t.pmem ~addr:(Layout.index_entry_addr f.r_index_tail slot)
            ~len:(span * 8);
          f.r_index_used <- slot + span;
          f.r_npages <- f.r_npages + span;
          i := !i + span
        end
      done;
      !result
  end

(* Growing a file past its old EOF exposes the tail of the old last
   page, which may hold stale bytes from before a shrink: zero the
   region [old_size, upto) that falls inside that page (fresh pages are
   zero by construction). *)
let zero_after_eof t (f : file_state) ~old_size ~upto =
  if old_size > 0 && old_size mod page_size <> 0 && upto > old_size then begin
    let page_end = ((old_size / page_size) + 1) * page_size in
    let zlen = min upto page_end - old_size in
    if zlen > 0 then
      match Radix.find f.r_index (old_size / page_size) with
      | Some pg ->
        let addr = (pg * page_size) + (old_size mod page_size) in
        Pmem.write t.pmem ~actor:t.proc ~addr ~src:(Bytes.make zlen '\000');
        Pmem.persist t.pmem ~addr ~len:zlen
      | None -> ()
  end

let write_at t (f : file_state) ~buf ~off =
  let len = Bytes.length buf in
  Sched.cpu_work Perf.Cpu.libfs_op;
  if len = 0 then Ok 0
  else begin
    (* any write requires the write mapping *)
    let* () = ensure_file_writable t f in
    let end_ = off + len in
    if end_ <= f.r_size then
      (* in-place write: shared inode lock + exclusive range.  The
         with_* combinators release the locks even when a revoked lease
         surfaces as an MMU fault mid-transfer. *)
      Sync.Rwlock.with_read f.r_ilock (fun () ->
          Sync.Range_lock.with_range f.r_range ~lo:off ~hi:(end_ - 1) Sync.Range_lock.Write
            (fun () ->
              let* runs = collect_runs f ~off ~len in
              do_data_io t ~write:true ~buf runs ~len;
              persist_runs t runs;
              Ok len))
    else
      Sync.Rwlock.with_write f.r_ilock (fun () ->
          let last_fpi = (end_ - 1) / page_size in
          match extend_file t f ~up_to_fpi:last_fpi with
          | Error e -> Error e
          | Ok () ->
            zero_after_eof t f ~old_size:f.r_size ~upto:off;
            let* runs = collect_runs f ~off ~len in
            do_data_io t ~write:true ~buf runs ~len;
            persist_runs t runs;
            if end_ > f.r_size then begin
              f.r_size <- end_;
              Layout.write_size t.pmem ~actor:t.proc ~dentry_addr:f.r_addr end_
            end;
            Ok len)
  end

let read_at t (f : file_state) ~buf ~off =
  let want = Bytes.length buf in
  Sched.cpu_work Perf.Cpu.libfs_op;
  Sync.Rwlock.with_read f.r_ilock (fun () ->
      let len = max 0 (min want (f.r_size - off)) in
      if len = 0 then Ok 0
      else
        Sync.Range_lock.with_range f.r_range ~lo:off ~hi:(off + len - 1) Sync.Range_lock.Read
          (fun () ->
            let* runs = collect_runs f ~off ~len in
            do_data_io t ~write:false ~buf runs ~len;
            Ok len))

let truncate_file t (f : file_state) ~size =
  let* () = ensure_file_writable t f in
  Sync.Rwlock.with_write f.r_ilock (fun () ->
    if size > f.r_size then begin
      (* grow with zero pages *)
      let last_fpi = if size = 0 then -1 else (size - 1) / page_size in
      match extend_file t f ~up_to_fpi:last_fpi with
      | Error e -> Error e
      | Ok () ->
        zero_after_eof t f ~old_size:f.r_size ~upto:size;
        f.r_size <- size;
        Layout.write_size t.pmem ~actor:t.proc ~dentry_addr:f.r_addr size;
        Ok ()
    end
    else begin
      let keep_pages = if size = 0 then 0 else ((size - 1) / page_size) + 1 in
      (* free the tail pages through the kernel *)
      let to_free = ref [] in
      for fpi = keep_pages to f.r_npages - 1 do
        match Radix.find f.r_index fpi with
        | Some pg ->
          to_free := pg :: !to_free;
          Radix.remove f.r_index fpi
        | None -> ()
      done;
      (* zero the index entries (tail-first within each index page) *)
      let rec zero_entries fpi =
        if fpi >= keep_pages then begin
          let ip_idx = fpi / Layout.index_entries in
          let slot = fpi mod Layout.index_entries in
          (match List.nth_opt f.r_index_pages ip_idx with
          | Some ip -> Layout.write_index_entry t.pmem ~actor:t.proc ~page:ip slot 0
          | None -> ());
          zero_entries (fpi - 1)
        end
      in
      zero_entries (f.r_npages - 1);
      f.r_npages <- keep_pages;
      f.r_index_tail <-
        (match List.nth_opt f.r_index_pages (max 0 ((keep_pages - 1) / Layout.index_entries)) with
        | Some ip when keep_pages > 0 -> ip
        | _ -> (match f.r_index_pages with ip :: _ -> ip | [] -> 0));
      f.r_index_used <- (if keep_pages = 0 then 0 else ((keep_pages - 1) mod Layout.index_entries) + 1);
      f.r_size <- size;
      Layout.write_size t.pmem ~actor:t.proc ~dentry_addr:f.r_addr size;
      if !to_free <> [] then free_pages_lazily t !to_free;
      Ok ()
    end
)

(* ------------------------------------------------------------------ *)
(* fd table *)

let alloc_fd t =
  let cpu = Sched.current_cpu () in
  Sched.cpu_work Perf.Cpu.fd_alloc;
  let n = t.fd_counters.(cpu) in
  t.fd_counters.(cpu) <- n + 1;
  (cpu * (1 lsl 20)) + n + 1

(* Resolve a descriptor to live auxiliary state, surviving aux-state
   drops after lease revocations (the dentry may also have moved if the
   file was renamed: ask the kernel for the current address). *)
let fd_file t fd =
  match Hashtbl.find_opt t.fds fd with
  | None -> Error EBADF
  | Some s ->
    (match Controller.dentry_addr_of t.ctl s.fd_ino with
    | Some addr -> s.fd_addr <- addr
    | None -> ());
    get_file t ~ino:s.fd_ino ~addr:s.fd_addr

(* ------------------------------------------------------------------ *)
(* Public operations *)

let stat_of_inode (inode : Layout.inode) =
  {
    st_ino = inode.Layout.ino;
    st_ftype = inode.Layout.ftype;
    st_mode = inode.Layout.mode;
    st_uid = inode.Layout.uid;
    st_gid = inode.Layout.gid;
    st_size = inode.Layout.size;
    st_mtime = float_of_int inode.Layout.mtime;
    st_ctime = float_of_int inode.Layout.ctime;
  }

let op_create t path mode =
  with_retry t (fun () ->
      let* d, name = resolve_parent t path in
      let* r = create_entry t d name ~ftype:Reg ~mode in
      (* the file is known empty: construct its auxiliary state directly
         rather than re-reading the dentry we just wrote *)
      let f =
        {
          r_ino = r.e_ino;
          r_addr = r.e_addr;
          r_size = 0;
          r_index = Radix.create ();
          r_index_pages = [];
          r_index_tail = 0;
          r_index_used = 0;
          r_npages = 0;
          r_ilock = Sync.Rwlock.create ();
          r_range = Sync.Range_lock.create ();
          r_write_mapped = true;
        }
      in
      Hashtbl.replace t.files r.e_ino f;
      let fd = alloc_fd t in
      Hashtbl.replace t.fds fd { fd_ino = r.e_ino; fd_addr = r.e_addr; fd_flags = [ O_RDWR ] };
      if t.unmap_after_write then unmap t d.d_ino;
      Ok fd)

let op_open t path flags =
  with_retry t (fun () ->
      let* d, name = resolve_parent t path in
      match lookup t d name with
      | None ->
        if List.mem O_CREAT flags then
          let* r = create_entry t d name ~ftype:Reg ~mode:0o644 in
          let* _f = get_file t ~ino:r.e_ino ~addr:r.e_addr in
          let fd = alloc_fd t in
          Hashtbl.replace t.fds fd { fd_ino = r.e_ino; fd_addr = r.e_addr; fd_flags = flags };
          Ok fd
        else Error ENOENT
      | Some { e_ftype = Dir; _ } -> Error EISDIR
      | Some r ->
        let* f = get_file t ~ino:r.e_ino ~addr:r.e_addr in
        let* () = if List.mem O_TRUNC flags then truncate_file t f ~size:0 else Ok () in
        let fd = alloc_fd t in
        Hashtbl.replace t.fds fd { fd_ino = r.e_ino; fd_addr = r.e_addr; fd_flags = flags };
        Ok fd)

let op_close t fd =
  match Hashtbl.find_opt t.fds fd with
  | None -> Error EBADF
  | Some { fd_ino; _ } ->
    Hashtbl.remove t.fds fd;
    (match Hashtbl.find_opt t.files fd_ino with
    | Some f when t.unmap_after_write && f.r_write_mapped -> unmap t fd_ino
    | _ -> ());
    Ok ()

let op_pread t fd buf off =
  with_retry t (fun () ->
      let* f = fd_file t fd in
      read_at t f ~buf ~off)

let op_pwrite t fd buf off =
  with_retry t (fun () ->
      let* f = fd_file t fd in
      let* n = write_at t f ~buf ~off in
      if t.unmap_after_write then unmap t f.r_ino;
      Ok n)

let op_append t fd buf =
  with_retry t (fun () ->
      let* f = fd_file t fd in
      (* serialize appends through the inode write lock via write_at's
         extending path, using the current size as offset *)
      let* n = write_at t f ~buf ~off:f.r_size in
      if t.unmap_after_write then unmap t f.r_ino;
      Ok n)

let op_truncate t path size =
  with_retry t (fun () ->
      let* d, name = resolve_parent t path in
      match lookup t d name with
      | None -> Error ENOENT
      | Some { e_ftype = Dir; _ } -> Error EISDIR
      | Some r ->
        let* f = get_file t ~ino:r.e_ino ~addr:r.e_addr in
        let* () = truncate_file t f ~size in
        Ok ())

let op_unlink t path =
  with_retry t (fun () ->
      let* d, name = resolve_parent t path in
      let* () = ensure_dir_writable t d in
      ensure_resolvable t d;
      let stripe = Htbl.stripe_of_key d.d_names name in
      let result =
        Sync.Rwlock.with_write d.d_stripes.(stripe) (fun () ->
            Sched.cpu_work Perf.Cpu.hash_lookup;
            match find_ref t d name with
            | None -> Error ENOENT
            | Some { e_ftype = Dir; _ } -> Error EISDIR
            | Some r ->
              Layout.clear_dentry_atomic t.pmem ~actor:t.proc ~addr:r.e_addr;
              ignore (Htbl.remove d.d_names name);
              Ok r)
      in
      match result with
      | Error e -> Error e
      | Ok r ->
        index_delete t d name r.e_addr;
        let page = r.e_addr / page_size in
        let slot = r.e_addr mod page_size / Layout.dentry_size in
        release_slot d ~page ~slot;
        bump_dir_size t d (-1);
        (* free the file's pages *)
        (if known_to_kernel t r.e_ino then
           ignore (Controller.free_file_tree t.ctl ~proc:t.proc ~ino:r.e_ino)
         else begin
           (* a file this LibFS created and never shared: free the pages
              we hold directly *)
           match Hashtbl.find_opt t.files r.e_ino with
           | Some f ->
             let pages = f.r_index_pages @ Radix.fold f.r_index [] (fun acc _ pg -> pg :: acc) in
             if pages <> [] then ignore (Controller.free_pages t.ctl ~proc:t.proc ~pages)
           | None -> ()
         end);
        Hashtbl.remove t.files r.e_ino;
        if t.unmap_after_write then unmap t d.d_ino;
        Ok ())

let op_mkdir t path mode =
  with_retry t (fun () ->
      let* d, name = resolve_parent t path in
      let* _r = create_entry t d name ~ftype:Dir ~mode in
      if t.unmap_after_write then unmap t d.d_ino;
      Ok ())

let op_rmdir t path =
  with_retry t (fun () ->
      let* d, name = resolve_parent t path in
      let* () = ensure_dir_writable t d in
      ensure_resolvable t d;
      let stripe = Htbl.stripe_of_key d.d_names name in
      let result =
        Sync.Rwlock.with_write d.d_stripes.(stripe) (fun () ->
            match find_ref t d name with
            | None -> Error ENOENT
            | Some { e_ftype = Reg; _ } -> Error ENOTDIR
            | Some r -> (
              (* the child must be empty: the live-entry count comes from
                 the child's inode, so no per-slot scan is needed even when
                 its aux state was built lazily *)
              match get_dir t ~ino:r.e_ino ~addr:r.e_addr with
              | Error e -> Error e
              | Ok child ->
                if child.d_size > 0 then Error ENOTEMPTY
                else begin
                  Layout.clear_dentry_atomic t.pmem ~actor:t.proc ~addr:r.e_addr;
                  ignore (Htbl.remove d.d_names name);
                  Ok (r, child)
                end))
      in
      match result with
      | Error e -> Error e
      | Ok (r, child) ->
        index_delete t d name r.e_addr;
        let page = r.e_addr / page_size in
        let slot = r.e_addr mod page_size / Layout.dentry_size in
        release_slot d ~page ~slot;
        bump_dir_size t d (-1);
        (if known_to_kernel t r.e_ino then begin
           ignore (Controller.unmap_file t.ctl ~proc:t.proc ~ino:r.e_ino);
           ignore (Controller.free_file_tree t.ctl ~proc:t.proc ~ino:r.e_ino)
         end
         else begin
           (* a directory this LibFS created and never shared: free its
              chain, dentry and index-node pages directly *)
           let dindex_pages =
             if child.d_dindex_root = 0 then []
             else Dirindex.pages t.pmem ~actor:t.proc ~root:child.d_dindex_root
           in
           let pages = child.d_index_pages @ child.d_data_pages @ dindex_pages in
           if pages <> [] then ignore (Controller.free_pages t.ctl ~proc:t.proc ~pages)
         end);
        drop_aux t r.e_ino;
        if t.unmap_after_write then unmap t d.d_ino;
        Ok ())

(* Readdir ordering contract (README): entries come back in ascending
   (name-hash, slot-address) key order — the index's native range-scan
   order, stable across mounts and processes.  The unindexed fallback
   sorts to the same order so the contract holds either way. *)
let readdir_order a b =
  compare
    (Dirindex.hash_name a.d_name, a.d_name)
    (Dirindex.hash_name b.d_name, b.d_name)

let op_readdir t path =
  with_retry t (fun () ->
      match split_path path with
      | None -> Error EINVAL
      | Some components -> (
        let* d = resolve_dir t components in
        let from_table () =
          materialize t d;
          let entries =
            Htbl.fold d.d_names [] (fun acc name r ->
                Sched.cpu_work Perf.Cpu.hash_lookup;
                { d_ino = r.e_ino; d_name = name; d_ftype = r.e_ftype } :: acc)
          in
          Ok (List.sort readdir_order entries)
        in
        if d.d_dindex_root = 0 then from_table ()
        else
          (* served by an index range scan, already in key order *)
          match
            Dirindex.fold ~stats:(kstats t) t.pmem ~actor:t.proc ~root:d.d_dindex_root
              ~init:[] ~f:(fun acc ~hash:_ ~addr ->
                match Layout.read_dentry t.pmem ~actor:t.proc ~addr with
                | Some (Ok (inode, name)) ->
                  { d_ino = inode.Layout.ino; d_name = name; d_ftype = inode.Layout.ftype }
                  :: acc
                | _ -> acc)
          with
          | Ok entries -> Ok (List.rev entries)
          | Error _ -> from_table () (* damaged tree: the pages are the truth *)))

let op_stat t path =
  with_retry t (fun () ->
      match split_path path with
      | None -> Error EINVAL
      | Some [] ->
        (* stat of the root *)
        let* _ = get_root t in
        (match Layout.read_dentry t.pmem ~actor:t.proc ~addr:Controller.root_dentry_addr with
        | Some (Ok (inode, _)) -> Ok (stat_of_inode inode)
        | _ -> Error EIO)
      | Some _ ->
        let* d, name = resolve_parent t path in
        (match lookup t d name with
        | None -> Error ENOENT
        | Some r -> (
          match Layout.read_dentry t.pmem ~actor:t.proc ~addr:r.e_addr with
          | Some (Ok (inode, _)) -> Ok (stat_of_inode inode)
          | _ -> Error EIO)))

let op_chmod t path mode =
  with_retry t (fun () ->
      let* d, name = resolve_parent t path in
      match lookup t d name with
      | None -> Error ENOENT
      | Some r ->
        if known_to_kernel t r.e_ino then Controller.chmod t.ctl ~proc:t.proc ~ino:r.e_ino ~mode
        else begin
          (* not yet ingested: update the cached inode; the shadow will be
             established from it at the next verification *)
          (match Layout.read_dentry t.pmem ~actor:t.proc ~addr:r.e_addr with
          | Some (Ok (inode, _)) ->
            Layout.write_perms t.pmem ~actor:t.proc ~dentry_addr:r.e_addr ~mode:(mode land 0o7777)
              ~uid:inode.Layout.uid ~gid:inode.Layout.gid
          | _ -> ());
          Ok ()
        end)

(* Rename: the one multi-location metadata update; uses the undo journal
   (paper §4.4). *)
let op_rename t src dst =
  with_retry t (fun () ->
      let* sd, sname = resolve_parent t src in
      let* dd, dname = resolve_parent t dst in
      let* () = ensure_dir_writable t sd in
      let* () = ensure_dir_writable t dd in
      ensure_resolvable t sd;
      ensure_resolvable t dd;
      (* Fine-grained locking: write-lock only the two name stripes, in
         a canonical (dir ino, stripe) order — renames of unrelated
         names in the same (even shared) directory proceed in parallel;
         no kernel-style global rename lock. *)
      Sched.cpu_work Perf.Cpu.hash_lookup;
      let s_stripe = Htbl.stripe_of_key sd.d_names sname in
      let d_stripe = Htbl.stripe_of_key dd.d_names dname in
      let locks =
        List.sort_uniq compare [ (sd.d_ino, s_stripe); (dd.d_ino, d_stripe) ]
        |> List.map (fun (ino, stripe) ->
               let d = if ino = sd.d_ino then sd else dd in
               d.d_stripes.(stripe))
      in
      List.iter Sync.Rwlock.write_lock locks;
      let finish result =
        List.iter Sync.Rwlock.write_unlock (List.rev locks);
        result
      in
      (* resolution under the held stripes can raise (transient media
         fault in the index descent): release before letting the retry
         wrapper see it, or the re-run parks on its own locks *)
      let unwind e =
        List.iter Sync.Rwlock.write_unlock (List.rev locks);
        raise e
      in
      try match find_ref t sd sname with
      | None -> finish (Error ENOENT)
      | Some _ when sd.d_ino = dd.d_ino && String.equal sname dname ->
        finish (Ok ()) (* POSIX: renaming a file onto itself is a no-op *)
      | Some src_ref -> (
        match find_ref t dd dname with
        | Some { e_ftype = Dir; _ } -> finish (Error EEXIST)
        | Some _ when src_ref.e_ftype = Dir -> finish (Error EEXIST)
        | existing -> (
          match t.journal with
          | None -> finish (Error ENOSPC) (* no journal pages: cannot rename atomically *)
          | Some journal -> (
          match claim_slot t dd with
          | Error e -> finish (Error e)
          | Ok (pg, slot) ->
            let dst_addr = Layout.dentry_slot_addr pg slot in
            (* undo-journal the blocks we are about to touch: the whole
               source dentry (it is cleared), only the ino field of the
               destination slot (it was free: undo = clear it again),
               and the size fields when two directories are involved *)
            let tx = Journal.begin_tx journal in
            Journal.log journal tx ~addr:src_ref.e_addr ~len:Layout.dentry_size;
            Journal.log journal tx ~addr:dst_addr ~len:8;
            (match existing with
            | Some er -> Journal.log journal tx ~addr:er.e_addr ~len:8
            | None -> ());
            if sd.d_ino <> dd.d_ino then begin
              Journal.log journal tx ~addr:(sd.d_addr + Layout.off_size) ~len:8;
              Journal.log journal tx ~addr:(dd.d_addr + Layout.off_size) ~len:8
            end;
            Journal.seal journal tx;
            (* copy the dentry under the new name *)
            (match Layout.read_dentry t.pmem ~actor:t.proc ~addr:src_ref.e_addr with
            | Some (Ok (inode, _)) ->
              (* a renamed directory's B-link root must travel with its
                 dentry — re-encoding from the inode alone would detach
                 the whole index *)
              let droot =
                Layout.read_dindex_root t.pmem ~actor:t.proc ~dentry_addr:src_ref.e_addr
              in
              Layout.write_dentry_atomic t.pmem ~actor:t.proc ~dindex_root:droot ~addr:dst_addr
                ~inode ~name:dname;
              (* replace an existing destination *)
              (match existing with
              | Some er ->
                Layout.clear_dentry_atomic t.pmem ~actor:t.proc ~addr:er.e_addr;
                ignore (Htbl.remove dd.d_names dname);
                let epage = er.e_addr / page_size in
                let eslot = er.e_addr mod page_size / Layout.dentry_size in
                release_slot dd ~page:epage ~slot:eslot;
                (if known_to_kernel t er.e_ino then
                   ignore (Controller.free_file_tree t.ctl ~proc:t.proc ~ino:er.e_ino));
                Hashtbl.remove t.files er.e_ino
              | None -> ());
              Layout.clear_dentry_atomic t.pmem ~actor:t.proc ~addr:src_ref.e_addr;
              Journal.commit journal tx;
              (* auxiliary state *)
              ignore (Htbl.remove sd.d_names sname);
              let spage = src_ref.e_addr / page_size in
              let sslot = src_ref.e_addr mod page_size / Layout.dentry_size in
              release_slot sd ~page:spage ~slot:sslot;
              Htbl.replace dd.d_names dname
                { e_ino = src_ref.e_ino; e_addr = dst_addr; e_ftype = src_ref.e_ftype };
              (* entry accounting: the source loses one entry; the
                 destination gains one unless an existing entry was
                 replaced.  Within one directory that nets to -1 on a
                 replace and 0 otherwise. *)
              let replaced = Option.is_some existing in
              if sd.d_ino <> dd.d_ino then begin
                bump_dir_size t sd (-1);
                if not replaced then bump_dir_size t dd 1
              end
              else if replaced then bump_dir_size t sd (-1);
              (* moved aux state must point at the new dentry *)
              (match Hashtbl.find_opt t.files src_ref.e_ino with
              | Some f -> f.r_addr <- dst_addr
              | None -> ());
              (match Hashtbl.find_opt t.dirs src_ref.e_ino with
              | Some d -> d.d_addr <- dst_addr
              | None -> ());
              (* index fixups, dentry truth already committed: the
                 source key leaves its tree, a replaced destination key
                 leaves too, and the new slot enters the destination's
                 tree.  A crash anywhere in between is reconciled by
                 mount recovery (the journal already sealed the dentry
                 moves). *)
              index_delete t sd sname src_ref.e_addr;
              (match existing with
              | Some er -> index_delete t dd dname er.e_addr
              | None -> ());
              index_insert t dd dname dst_addr;
              (* unmap destination first so the verifier sees the move
                 before the source's deleted-child diff (DESIGN.md) *)
              if t.unmap_after_write then begin
                unmap t dd.d_ino;
                if sd.d_ino <> dd.d_ino then unmap t sd.d_ino
              end;
              finish (Ok ())
            | _ -> finish (Error EIO)))))
      with e -> unwind e)

(* Data and metadata are persisted synchronously (§4.4): fsync only has
   to validate the descriptor. *)
let op_fsync t fd =
  match Hashtbl.find_opt t.fds fd with Some _ -> Ok () | None -> Error EBADF

(* ------------------------------------------------------------------ *)
(* Teardown / sharing helpers *)

(* Teardown is a sharing point: the caller expects every verification
   triggered by its unmaps to have *landed* when this returns, so after
   dropping the mappings we quiesce the background pipeline.  Per-file
   unmaps stay asynchronous. *)
let unmap_everything t =
  flush_free_backlog t;
  (* Quiesce the ring first: fire-and-forget unmaps still in flight
     must land before unmap_all decides what this process still holds. *)
  (match t.ring with Some r -> Controller.ring_drain r | None -> ());
  Hashtbl.reset t.dirs;
  Hashtbl.reset t.files;
  Hashtbl.reset t.fds;
  t.root <- None;
  Controller.unmap_all t.ctl ~proc:t.proc;
  Controller.drain_verification t.ctl

let commit_file t path =
  with_retry t (fun () ->
      let* d, name = resolve_parent t path in
      match lookup t d name with
      | None -> Error ENOENT
      | Some r -> Controller.commit t.ctl ~proc:t.proc ~ino:r.e_ino)

(* Accessors for customized LibFSes (KVFS, FPFS) built on these
   internals. *)
let register_fd t fd (f : file_state) =
  Hashtbl.replace t.fds fd { fd_ino = f.r_ino; fd_addr = f.r_addr; fd_flags = [ O_RDWR ] }

let stat_dentry t (r : dentry_ref) =
  match Layout.read_dentry t.pmem ~actor:t.proc ~addr:r.e_addr with
  | Some (Ok (inode, _)) -> Ok (stat_of_inode inode)
  | _ -> Error EIO

let pmem_of t = t.pmem
let proc_of t = t.proc
let root_dir t = t.root
let topo_of t = t.topo
let cache_of t = t.cache
let sched_of t = t.sched
let stats_of t = t.stats
let controller_of t = t.ctl

(* The Fs_intf record for this LibFS. *)
let ops t =
  {
    Trio_core.Fs_intf.fs_name = "arckfs";
    create = (fun path mode -> op_create t path mode);
    open_ = (fun path flags -> op_open t path flags);
    close = (fun fd -> op_close t fd);
    pread = (fun fd buf off -> op_pread t fd buf off);
    pwrite = (fun fd buf off -> op_pwrite t fd buf off);
    append = (fun fd buf -> op_append t fd buf);
    truncate = (fun path size -> op_truncate t path size);
    unlink = (fun path -> op_unlink t path);
    mkdir = (fun path mode -> op_mkdir t path mode);
    rmdir = (fun path -> op_rmdir t path);
    readdir = (fun path -> op_readdir t path);
    stat = (fun path -> op_stat t path);
    rename = (fun src dst -> op_rename t src dst);
    chmod = (fun path mode -> op_chmod t path mode);
    fsync = (fun fd -> op_fsync t fd);
  }
