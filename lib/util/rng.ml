(* Deterministic splitmix64 PRNG.

   Every randomized component in the repository (workload generators, crash
   injection, corruption scripts) draws from an explicit [Rng.t] so that a
   given seed always reproduces the same simulation. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Non-negative int in [0, 2^62). *)
let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.in_range: hi < lo";
  lo + int t (hi - lo + 1)

(* NB: [1 lsl 62] overflows to [min_int] on 64-bit OCaml, so the divisor
   must be a float literal for the result to land in [0, bound). *)
let float t bound = Float.of_int (next t) /. 0x1p62 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Sample from a zipf-like distribution over [0, n); used by the Filebench
   and db_bench workload generators to pick files/keys with skew. *)
let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf";
  if theta <= 0.0 then int t n
  else begin
    let u = float t 1.0 in
    let x = Float.pow (Float.of_int n) (1.0 -. theta) in
    let v = ((x -. 1.0) *. u) +. 1.0 in
    let r = Float.pow v (1.0 /. (1.0 -. theta)) in
    let i = int_of_float r - 1 in
    if i < 0 then 0 else if i >= n then n - 1 else i
  end

let bytes t len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = create (Int64.to_int (next_int64 t))
