(* trioctl: command-line driver for the Trio/ArckFS simulator.

     dune exec bin/trioctl.exe -- info
     dune exec bin/trioctl.exe -- smoke
     dune exec bin/trioctl.exe -- fsck
     dune exec bin/trioctl.exe -- attacks --seeds 8
     dune exec bin/trioctl.exe -- micro --fs arckfs --op create --threads 28

   Everything runs against the deterministic simulated machine; see
   bench/main.exe for the full paper-evaluation harness. *)

module Rig = Trio_workloads.Rig
module Libfs = Arckfs.Libfs
module Sched = Trio_sim.Sched
module Numa = Trio_nvm.Numa
module Perf = Trio_nvm.Perf
module Pmem = Trio_nvm.Pmem
module Controller = Trio_core.Controller
module Verifier = Trio_core.Verifier
module Fs = Trio_core.Fs_intf
module Vfs = Trio_core.Vfs
open Cmdliner

let ok what = function
  | Ok v -> v
  | Error e ->
    Printf.eprintf "%s failed: %s\n" what (Trio_core.Fs_types.errno_to_string e);
    exit 1

(* ------------------------------------------------------------------ *)
(* info *)

let info_cmd =
  let run () =
    let p = Perf.optane in
    Printf.printf "simulated machine (paper configuration):\n";
    Printf.printf "  sockets: %d, CPUs: %d (%d per socket)\n" 8 224 28;
    Printf.printf "  NVM profile: %s\n" p.Perf.name;
    Printf.printf "    read latency  %.0f ns   write latency %.0f ns   flush %.0f ns\n"
      p.Perf.read_latency p.Perf.write_latency p.Perf.flush_latency;
    Printf.printf "    remote access: reads x%.1f, writes x%.1f\n" p.Perf.remote_read_factor
      p.Perf.remote_write_factor;
    Printf.printf "    per-socket read bandwidth:  %.1f GB/s (1 thr) -> %.1f GB/s (16 thr)\n"
      (Perf.read_bandwidth p 1) (Perf.read_bandwidth p 16);
    Printf.printf "    per-socket write bandwidth: %.1f GB/s (4 thr) -> %.1f GB/s (64 thr)\n"
      (Perf.write_bandwidth p 4) (Perf.write_bandwidth p 64);
    Printf.printf "  file systems: arckfs arckfs-nd kvfs fpfs | ext4 ext4-raid0 pmfs nova\n";
    Printf.printf "                winefs odinfs splitfs strata\n";
    0
  in
  Cmd.v (Cmd.info "info" ~doc:"Describe the simulated machine and NVM cost model")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* smoke *)

let smoke_cmd =
  let run fs_name =
    Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:32768 ~store_data:true (fun rig ->
        let vfs = Rig.mount_fs rig fs_name in
        let fs = Vfs.ops vfs in
        ok "mkdir" (fs.Fs.mkdir "/smoke" 0o755);
        ok "write" (Fs.write_file fs "/smoke/hello" "hello from trioctl\n");
        let back = ok "read" (Fs.read_file fs "/smoke/hello") in
        ok "rename" (fs.Fs.rename "/smoke/hello" "/smoke/world");
        ok "unlink" (fs.Fs.unlink "/smoke/world");
        Printf.printf "%s: create/write/read/rename/unlink all OK (read back %d bytes)\n"
          fs_name (String.length back);
        Format.printf "per-op latency breakdown:@.%a" Vfs.pp_breakdown vfs;
        0)
  in
  let fs_arg =
    Arg.(value & opt string "arckfs" & info [ "fs" ] ~docv:"FS" ~doc:"File system to exercise")
  in
  Cmd.v (Cmd.info "smoke" ~doc:"Run a quick end-to-end smoke test on a file system")
    Term.(const run $ fs_arg)

(* ------------------------------------------------------------------ *)
(* fsck: build a tree, then verify every file through the Trio verifier *)

let fsck_cmd =
  let run files dirs =
    Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
        let libfs = Rig.mount_arckfs ~delegated:false rig in
        let fs = Libfs.ops libfs in
        for d = 0 to dirs - 1 do
          ok "mkdir" (fs.Fs.mkdir (Printf.sprintf "/dir%02d" d) 0o755);
          for f = 0 to files - 1 do
            ok "write"
              (Fs.write_file fs
                 (Printf.sprintf "/dir%02d/file%03d" d f)
                 (String.make ((f * 731 mod 9000) + 10) 'x'))
          done
        done;
        Libfs.unmap_everything libfs;
        (* every file was verified at ingestion; now audit the volume *)
        let ctl = rig.Rig.ctl in
        let sched = rig.Rig.sched in
        let t0 = Sched.now sched in
        let checked = ref 0 and violations = ref 0 in
        let rec audit ino =
          match Controller.file_info ctl ino with
          | None -> ()
          | Some _ ->
            let dentry_addr = Option.get (Controller.dentry_addr_of ctl ino) in
            let report =
              Verifier.check_file (Controller.view ctl) ~proc:Pmem.kernel_actor ~ino ~dentry_addr
            in
            incr checked;
            violations := !violations + List.length report.Verifier.violations;
            List.iter
              (fun (c : Verifier.child) ->
                if c.Verifier.c_ftype = Trio_core.Fs_types.Dir then audit c.Verifier.c_ino)
              report.Verifier.children
        in
        audit Controller.root_ino;
        Printf.printf "fsck: verified %d directories+files, %d violations, %.2f virtual ms\n"
          !checked !violations
          ((Sched.now sched -. t0) /. 1e6);
        Printf.printf "corruption events recorded by the controller: %d\n"
          (List.length (Controller.corruption_events ctl));
        if !violations = 0 then 0 else 1)
  in
  let files = Arg.(value & opt int 50 & info [ "files" ] ~doc:"Files per directory") in
  let dirs = Arg.(value & opt int 8 & info [ "dirs" ] ~doc:"Number of directories") in
  Cmd.v
    (Cmd.info "fsck" ~doc:"Build a namespace and audit every file with the integrity verifier")
    Term.(const run $ files $ dirs)

(* ------------------------------------------------------------------ *)
(* attacks *)

let attacks_cmd =
  let run seeds =
    print_endline "handcrafted malicious-LibFS attacks:";
    let outcomes = Trio_attacks.Attacks.run_handcrafted () in
    List.iter (fun o -> Format.printf "  %a@." Trio_attacks.Attacks.pp_outcome o) outcomes;
    let r = Trio_attacks.Attacks.run_campaign ~seeds () in
    Printf.printf "corruption campaign: %d scenarios, %d detected-or-benign, %d consistent\n"
      r.Trio_attacks.Attacks.c_total r.Trio_attacks.Attacks.c_detected
      r.Trio_attacks.Attacks.c_consistent;
    if
      List.for_all (fun o -> o.Trio_attacks.Attacks.a_detected && o.Trio_attacks.Attacks.a_recovered) outcomes
      && r.Trio_attacks.Attacks.c_consistent = r.Trio_attacks.Attacks.c_total
    then 0
    else 1
  in
  let seeds = Arg.(value & opt int 4 & info [ "seeds" ] ~doc:"Seeds per corruption script") in
  Cmd.v (Cmd.info "attacks" ~doc:"Run the §6.5 integrity attack suite") Term.(const run $ seeds)

(* ------------------------------------------------------------------ *)
(* faults / scrub: the media-fault plane (DESIGN.md §4.11) *)

let print_fault_counters pmem =
  let f = Pmem.fault_stats pmem in
  Printf.printf "media-fault counters:\n";
  Printf.printf "  transient read faults: %d\n" f.Pmem.transient_faults;
  Printf.printf "  stuck stores:          %d\n" f.Pmem.stuck_stores;
  Printf.printf "  poison read hits:      %d\n" f.Pmem.poison_read_hits;
  Printf.printf "  poison repaired:       %d\n" f.Pmem.poison_repaired;
  Printf.printf "  poisoned lines now:    %d\n" f.Pmem.poisoned_now

let print_poison_list pmem =
  match Pmem.poisoned_lines pmem with
  | [] -> Printf.printf "poisoned lines: none\n"
  | lines ->
    let shown = List.filteri (fun i _ -> i < 16) lines in
    Printf.printf "poisoned lines (%d total): %s%s\n" (List.length lines)
      (String.concat ", "
         (List.map (fun (pg, ln) -> Printf.sprintf "%d:%d" pg ln) shown))
      (if List.length lines > 16 then ", ..." else "")

let faults_cmd =
  let run fs_name seed transient_p stuck_p inject clear files file_kb =
    let inject_ranges =
      List.map
        (fun s ->
          match String.split_on_char ':' s with
          | [ a; l ] -> (
            match (int_of_string_opt a, int_of_string_opt l) with
            | Some a, Some l when l > 0 -> (a, l)
            | _ ->
              Printf.eprintf "bad --inject %S (want ADDR:LEN)\n" s;
              exit 2)
          | _ ->
            Printf.eprintf "bad --inject %S (want ADDR:LEN)\n" s;
            exit 2)
        inject
    in
    Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
        let pmem = rig.Trio_workloads.Rig.pmem in
        let ctl = rig.Trio_workloads.Rig.ctl in
        let vfs = Rig.mount_fs rig fs_name in
        let fs = Vfs.ops vfs in
        Pmem.set_fault_injection pmem ~seed ~transient_read_p:transient_p
          ~stuck_store_p:stuck_p ();
        Printf.printf "fault injection armed: seed %d, transient-read p=%g, stuck-store p=%g\n"
          seed transient_p stuck_p;
        List.iter
          (fun (addr, len) ->
            Pmem.inject_poison pmem ~addr ~len;
            Printf.printf "injected latent poison: addr %d, %d bytes\n" addr len)
          inject_ranges;
        (* conformance + fio-style sweep under live injection: the only
           hard requirement is graceful degradation — every operation
           returns Ok or a clean errno, nothing throws *)
        let oks = ref 0 in
        let errs = Hashtbl.create 8 in
        let note = function
          | Ok _ -> incr oks
          | Error e ->
            let k = Trio_core.Fs_types.errno_to_string e in
            Hashtbl.replace errs k (1 + Option.value ~default:0 (Hashtbl.find_opt errs k))
        in
        let outcome =
          try
            note (Result.map (fun () -> ()) (fs.Fs.mkdir "/fio" 0o755));
            for i = 0 to files - 1 do
              let path = Printf.sprintf "/fio/f%03d" i in
              let body = String.make (file_kb * 1024) (Char.chr (Char.code 'a' + (i mod 26))) in
              note (Result.map (fun () -> ()) (Fs.write_file fs path body));
              note (Result.map (fun _ -> ()) (Fs.read_file fs path));
              note (Result.map (fun _ -> ()) (fs.Fs.stat path));
              if i mod 4 = 0 then begin
                let target = Printf.sprintf "/fio/r%03d" i in
                note (Result.map (fun () -> ()) (fs.Fs.rename path target));
                note (Result.map (fun () -> ()) (fs.Fs.unlink target))
              end
            done;
            note (Result.map (fun _ -> ()) (fs.Fs.readdir "/fio"));
            Ok ()
          with exn -> Error exn
        in
        (match outcome with
        | Ok () -> Printf.printf "workload completed: no uncaught exceptions\n"
        | Error exn -> Printf.printf "UNCAUGHT EXCEPTION: %s\n" (Printexc.to_string exn));
        Printf.printf "operations: %d ok" !oks;
        Hashtbl.iter (fun k v -> Printf.printf ", %d %s" v k) errs;
        Printf.printf "\n";
        print_fault_counters pmem;
        print_poison_list pmem;
        (match Controller.badblocks ctl with
        | [] -> Printf.printf "badblock quarantine: empty\n"
        | bad ->
          Printf.printf "badblock quarantine: %s\n"
            (String.concat ", " (List.map string_of_int bad)));
        Format.printf "per-op counters (media-faults column when nonzero):@.%a" Vfs.pp_breakdown
          vfs;
        if clear then begin
          Pmem.clear_fault_injection pmem;
          Pmem.clear_poison pmem;
          Printf.printf "fault injection cleared; poisoned lines now: %d\n"
            (Pmem.poisoned_count pmem)
        end;
        match outcome with Ok () -> 0 | Error _ -> 1)
  in
  let fs_arg =
    Arg.(value & opt string "arckfs" & info [ "fs" ] ~docv:"FS" ~doc:"File system to exercise")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fault-injection seed") in
  let transient_arg =
    Arg.(
      value & opt float 0.01
      & info [ "transient-p" ] ~docv:"P" ~doc:"Per-access transient read-fault probability")
  in
  let stuck_arg =
    Arg.(
      value & opt float 0.02
      & info [ "stuck-p" ] ~docv:"P" ~doc:"Per-store stuck-at failure probability")
  in
  let inject_arg =
    Arg.(
      value & opt_all string []
      & info [ "inject" ] ~docv:"ADDR:LEN"
          ~doc:"Inject latent poison over a byte range (repeatable)")
  in
  let clear_arg =
    Arg.(
      value & flag
      & info [ "clear" ] ~doc:"Clear fault injection and all poison after the workload")
  in
  let files_arg =
    Arg.(value & opt int 24 & info [ "files" ] ~doc:"Files in the fio-style sweep")
  in
  let kb_arg = Arg.(value & opt int 16 & info [ "file-kb" ] ~doc:"File size in KiB") in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run a conformance + fio-style workload with the media-fault plane armed, then list \
          fault counters, poisoned lines and the badblock quarantine")
    Term.(
      const run $ fs_arg $ seed_arg $ transient_arg $ stuck_arg $ inject_arg $ clear_arg
      $ files_arg $ kb_arg)

let scrub_cmd =
  let module Scrub = Trio_core.Scrub in
  let run seed lines rounds files =
    Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
        let pmem = rig.Trio_workloads.Rig.pmem in
        let ctl = rig.Trio_workloads.Rig.ctl in
        let libfs = Rig.mount_arckfs ~delegated:false rig in
        let fs = Libfs.ops libfs in
        ok "mkdir" (fs.Fs.mkdir "/scrub" 0o755);
        let paths =
          List.init files (fun i ->
              let path = Printf.sprintf "/scrub/f%03d" i in
              ok "write"
                (Fs.write_file fs path (String.make ((i * 977 mod 12000) + 64) 'd'));
              path)
        in
        (* the sharing point: ingestion verifies and checkpoints the tree *)
        Libfs.unmap_everything libfs;
        (* seeded latent poison over in-file pages only: the interesting
           scrub paths (checkpoint repair, migration, quarantine) *)
        let rng = Trio_util.Rng.create seed in
        let in_file =
          List.filter
            (fun pg ->
              match Controller.page_owner_of ctl pg with
              | Controller.In_file _ -> true
              | _ -> false)
            (List.init (Pmem.total_pages pmem) Fun.id)
          |> Array.of_list
        in
        if Array.length in_file = 0 then begin
          Printf.eprintf "no in-file pages to poison\n";
          exit 1
        end;
        for _ = 1 to lines do
          let page = in_file.(Trio_util.Rng.int rng (Array.length in_file)) in
          Pmem.poison_line pmem ~page ~line:(Trio_util.Rng.int rng Pmem.lines_per_page)
        done;
        Printf.printf "injected %d poisoned lines across %d in-file pages\n" lines
          (Array.length in_file);
        let stats = Scrub.make_stats () in
        for _ = 1 to rounds do
          ignore (Scrub.patrol_once ~stats ctl : Scrub.stats)
        done;
        Format.printf "patrol scrubber (%d rounds):@.%a@." rounds Scrub.pp_stats stats;
        (match Controller.badblocks ctl with
        | [] -> Printf.printf "badblock quarantine: empty\n"
        | bad ->
          Printf.printf "badblock quarantine: %s\n"
            (String.concat ", " (List.map string_of_int bad)));
        Printf.printf "poisoned lines remaining: %d\n" (Pmem.poisoned_count pmem);
        (* remount and sweep: repaired files read back, degraded ones
           answer with clean errnos *)
        let libfs2 = Rig.mount_arckfs ~delegated:false rig in
        let fs2 = Libfs.ops libfs2 in
        let full = ref 0 and errno = ref 0 in
        List.iter
          (fun path ->
            match Fs.read_file fs2 path with
            | Ok _ -> incr full
            | Error _ -> incr errno)
          paths;
        Printf.printf "post-scrub sweep: %d/%d files readable, %d clean errnos, 0 exceptions\n"
          !full (List.length paths) !errno;
        0)
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Poison-placement seed") in
  let lines_arg =
    Arg.(value & opt int 12 & info [ "lines" ] ~docv:"N" ~doc:"Latent poisoned lines to inject")
  in
  let rounds_arg = Arg.(value & opt int 2 & info [ "rounds" ] ~doc:"Patrol passes to run") in
  let files_arg = Arg.(value & opt int 40 & info [ "files" ] ~doc:"Files to build beforehand") in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Poison live pages, run the controller patrol scrubber, and report repairs, migrations \
          and quarantined pages")
    Term.(const run $ seed_arg $ lines_arg $ rounds_arg $ files_arg)

(* ------------------------------------------------------------------ *)
(* stats / trace: per-op observability of the VFS dispatch layer *)

(* Scripted mixed workload: data and metadata ops, plus a few operations
   that are expected to fail so the errno counters are exercised. *)
let observability_workload ?(dir = "/obs") fs =
  ok "mkdir" (fs.Fs.mkdir dir 0o755);
  for i = 0 to 15 do
    ok "write"
      (Fs.write_file fs (Printf.sprintf "%s/f%02d" dir i) (String.make (512 * (i + 1)) 'a'))
  done;
  for i = 0 to 15 do
    ignore (ok "read" (Fs.read_file fs (Printf.sprintf "%s/f%02d" dir i)))
  done;
  ignore (ok "readdir" (fs.Fs.readdir dir));
  ignore (ok "stat" (fs.Fs.stat (dir ^ "/f01")));
  ok "rename" (fs.Fs.rename (dir ^ "/f00") (dir ^ "/renamed"));
  ok "unlink" (fs.Fs.unlink (dir ^ "/renamed"));
  (* expected failures *)
  ignore (fs.Fs.open_ (dir ^ "/missing") [ Trio_core.Fs_types.O_RDONLY ]);
  ignore (fs.Fs.mkdir dir 0o755);
  ignore (fs.Fs.unlink (dir ^ "/missing"))

let print_verify_counters ctl =
  let stats = Controller.stats ctl in
  let verify =
    List.filter
      (fun (name, _) -> String.length name >= 6 && String.sub name 0 6 = "verify")
      (Trio_sim.Stats.to_list stats)
  in
  match verify with
  | [] -> Printf.printf "verification plane: no activity recorded\n"
  | kvs ->
    Printf.printf "verification plane (per-invariant timers, pipeline counters):\n";
    List.iter (fun (k, v) -> Printf.printf "  %-32s %.1f\n" k v) kvs

let stats_cmd =
  let run fs_name =
    Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
        let vfs = Rig.mount_fs rig fs_name in
        observability_workload (Vfs.ops vfs);
        (* A second, ring-mounted LibFS so the batched syscall plane has
           activity to report alongside the sync-path numbers. *)
        let ringfs = Rig.mount_arckfs ~ring:16 rig in
        observability_workload ~dir:"/obs-ring" (Libfs.ops ringfs);
        (* the sharing point: released write mappings ride the
           verification pipeline, so the verify counters are live *)
        Rig.unmount_all rig;
        Printf.printf "%s: %d operations dispatched through the VFS layer\n" fs_name
          (Vfs.total_ops vfs);
        Format.printf "per-op counters, errno breakdown and latency percentiles:@.%a"
          Vfs.pp_breakdown vfs;
        print_verify_counters rig.Rig.ctl;
        let acq, cross = Controller.lock_stats rig.Rig.ctl in
        Format.printf "per-socket shards (%d lock acquisitions, %d cross-shard ops):@.%a@."
          acq cross Controller.pp_shard_stats
          (Controller.shard_stats rig.Rig.ctl);
        Format.printf "ring plane (depth, batch histogram, park/wake counts per shard):@.%a@."
          Controller.pp_ring_stats
          (Controller.ring_stats rig.Rig.ctl);
        0)
  in
  let fs_arg =
    Arg.(value & opt string "arckfs" & info [ "fs" ] ~docv:"FS" ~doc:"File system to exercise")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a mixed workload and dump the VFS per-op counters and latency histograms")
    Term.(const run $ fs_arg)

let trace_cmd =
  let run fs_name last =
    if last <= 0 then begin
      Printf.eprintf "--last must be positive\n";
      exit 2
    end;
    Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
        let vfs = Rig.mount_fs ~trace_capacity:last rig fs_name in
        observability_workload (Vfs.ops vfs);
        Rig.unmount_all rig;
        Printf.printf "%s: last %d of %d operations (ring capacity %d):\n" fs_name
          (List.length (Vfs.trace vfs))
          (Vfs.total_ops vfs) last;
        Format.printf "%a" Vfs.pp_trace vfs;
        0)
  in
  let fs_arg =
    Arg.(value & opt string "arckfs" & info [ "fs" ] ~docv:"FS" ~doc:"File system to exercise")
  in
  let last_arg =
    Arg.(value & opt int 32 & info [ "last" ] ~docv:"N" ~doc:"Trace ring capacity (entries kept)")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a mixed workload with a bounded trace ring and dump the most recent operations")
    Term.(const run $ fs_arg $ last_arg)

(* ------------------------------------------------------------------ *)
(* crashcheck: systematic crash-state exploration / differential fuzzing *)

let crashcheck_cmd =
  let module Explore = Trio_check.Explore in
  let module Script = Trio_check.Script in
  let module Differ = Trio_check.Differ in
  let run script at survive seed scripts ops budget exhaustive_lines samples diff mutate
      no_shrink =
    let parsed_script =
      Option.map
        (fun s ->
          match Script.parse s with
          | Ok ops -> ops
          | Error e ->
            Printf.eprintf "bad --script: %s\n" e;
            exit 2)
        script
    in
    if mutate then Arckfs.Journal.set_crash_test_reorder_commit true;
    let config =
      {
        Explore.default_config with
        seed;
        max_states = budget;
        exhaustive_lines;
        samples_per_point = samples;
        shrink = not no_shrink;
      }
    in
    match (at, parsed_script) with
    | Some _, None ->
      Printf.eprintf "--at requires --script\n";
      exit 2
    | Some crash_index, Some ops -> (
      (* replay one specific crash state of one script *)
      let survivors =
        match Explore.parse_survivors survive with
        | Ok s -> s
        | Error e ->
          Printf.eprintf "bad --survive: %s\n" e;
          exit 2
      in
      Printf.printf "replaying: %s\n" (Script.to_string ops);
      Printf.printf "crash after %d LibFS stores, surviving lines: %s\n" crash_index
        (if survivors = [] then "none" else survive);
      match Explore.check_state ops ~crash_index ~survivors with
      | Ok () ->
        Printf.printf "state is consistent: all completed ops durable, in-flight op atomic\n";
        0
      | Error d ->
        Printf.printf "VIOLATION: %s\n" d;
        1)
    | None, _ when diff -> (
      (* differential cross-FS fuzzing *)
      match parsed_script with
      | Some ops -> (
        Printf.printf "diffing %d ops across: %s\n" (List.length ops)
          (String.concat " " Differ.default_fses);
        match Differ.diff ~shrink:(not no_shrink) ops with
        | [] ->
          Printf.printf "all file systems agree with the model\n";
          0
        | ds ->
          List.iter (fun d -> Format.printf "%a@." Differ.pp_divergence d) ds;
          1)
      | None -> (
        Printf.printf "differential campaign: %d scripts x %d ops across %d file systems\n"
          scripts ops
          (List.length Differ.default_fses);
        match Differ.campaign ~rounds:scripts ~len:ops ~seed () with
        | None ->
          Printf.printf "no divergence found\n";
          0
        | Some (script, ds) ->
          Printf.printf "divergence on: %s\n" (Script.to_string script);
          List.iter (fun d -> Format.printf "%a@." Differ.pp_divergence d) ds;
          1))
    | None, _ ->
      (* crash-state exploration *)
      let rng = Trio_util.Rng.create seed in
      let scripts_to_run =
        match parsed_script with
        | Some ops -> [ ops ]
        | None -> List.init scripts (fun _ -> Script.generate rng ~len:ops)
      in
      let failed = ref false in
      List.iteri
        (fun i ops ->
          if not !failed then begin
            Printf.printf "script %d/%d: %s\n%!" (i + 1) (List.length scripts_to_run)
              (Script.to_string ops);
            let o = Explore.explore ~config ops in
            Printf.printf
              "  %d crash points, %d states checked, enumeration %s\n%!" o.Explore.crash_points
              o.Explore.states
              (if o.Explore.exhaustive then "exhaustive" else "sampled");
            match o.Explore.counterexample with
            | None -> ()
            | Some cx ->
              failed := true;
              Format.printf "VIOLATION (minimized):@.%a" Explore.pp_counterexample cx
          end)
        scripts_to_run;
      if !failed then 1 else 0
  in
  let script_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"OPS"
          ~doc:"Explicit op script, e.g. \"create /n00; rename /n00 /n01\" (default: generate)")
  in
  let at_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "at" ] ~docv:"N" ~doc:"Replay one crash state: die after $(docv) LibFS stores")
  in
  let survive_arg =
    Arg.(
      value & opt string ""
      & info [ "survive" ] ~docv:"LINES"
          ~doc:"With --at: unflushed cachelines that survive, as page:line,... (default none)")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Script/sampling seed") in
  let scripts_arg =
    Arg.(value & opt int 3 & info [ "scripts" ] ~doc:"Number of generated scripts to explore")
  in
  let ops_arg = Arg.(value & opt int 8 & info [ "ops" ] ~doc:"Ops per generated script") in
  let budget_arg =
    Arg.(value & opt int 4096 & info [ "budget" ] ~doc:"Max crash states per script")
  in
  let exh_arg =
    Arg.(
      value & opt int 6
      & info [ "exhaustive-lines" ] ~docv:"K"
          ~doc:"Enumerate all surviving subsets when <= $(docv) unflushed lines (2^$(docv) states)")
  in
  let samples_arg =
    Arg.(
      value & opt int 6
      & info [ "samples" ] ~doc:"Sampled surviving subsets per crash point above the threshold")
  in
  let diff_arg =
    Arg.(
      value & flag
      & info [ "diff" ] ~doc:"Differential mode: diff scripts across all nine file systems")
  in
  let mutate_arg =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Enable the seeded journal-commit reordering bug (engine self-test: exploration must \
             catch it)")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report counterexamples without minimizing")
  in
  Cmd.v
    (Cmd.info "crashcheck"
       ~doc:
         "Systematically explore crash states of op scripts (and differentially fuzz all file \
          systems)")
    Term.(
      const run $ script_arg $ at_arg $ survive_arg $ seed_arg $ scripts_arg $ ops_arg
      $ budget_arg $ exh_arg $ samples_arg $ diff_arg $ mutate_arg $ no_shrink_arg)

(* ------------------------------------------------------------------ *)
(* procfail: the process-failure plane (DESIGN.md §4.12) *)

let procfail_cmd =
  let module Explore = Trio_check.Explore in
  let module Script = Trio_check.Script in
  let run seed scripts ops kill_points hang_points timeout_us ring mutate =
    let base =
      {
        Explore.pd_seed = seed;
        pd_kill_points = kill_points;
        pd_hang_points = hang_points;
        pd_timeout_ns = timeout_us *. 1000.0;
        pd_ring = (if ring > 0 then Some ring else None);
      }
    in
    if ring > 0 then
      Printf.printf "ring mode: victims mount with a depth-%d submission ring\n" ring;
    if mutate then begin
      Controller.set_crash_test_skip_gc true;
      Printf.printf "skip-GC mutation armed: the leak invariant must catch it\n"
    end;
    let rng = Trio_util.Rng.create seed in
    let scripts_to_run = List.init scripts (fun _ -> Script.generate rng ~len:ops) in
    let caught = ref false and failed = ref false in
    List.iteri
      (fun i script ->
        if not (!failed || !caught) then begin
          Printf.printf "script %d/%d: %s\n%!" (i + 1) scripts (Script.to_string script);
          let config = { base with Explore.pd_seed = seed + i } in
          let r = Explore.explore_proc_death ~config script in
          Format.printf "  %a@." Explore.pp_proc_report r;
          match r.Explore.pr_failure with
          | None -> ()
          | Some cx ->
            if mutate then caught := true
            else begin
              failed := true;
              Format.printf "VIOLATION:@.%a" Explore.pp_counterexample cx
            end
        end)
      scripts_to_run;
    if mutate then begin
      Controller.set_crash_test_skip_gc false;
      if !caught then begin
        Printf.printf "mutation caught: leaked pages detected by the accounting invariant\n";
        0
      end
      else begin
        Printf.printf "MUTATION NOT CAUGHT: the leak invariant missed a disabled GC\n";
        1
      end
    end
    else if !failed then 1
    else 0
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Script/sampling seed") in
  let scripts_arg =
    Arg.(value & opt int 3 & info [ "scripts" ] ~doc:"Number of generated scripts to explore")
  in
  let ops_arg = Arg.(value & opt int 8 & info [ "ops" ] ~doc:"Ops per generated script") in
  let kill_arg =
    Arg.(
      value & opt int 12
      & info [ "kill-points" ] ~docv:"N" ~doc:"Sampled kill injection points per script")
  in
  let hang_arg =
    Arg.(
      value & opt int 3
      & info [ "hang-points" ] ~docv:"N" ~doc:"Sampled hang (wedge) injection points per script")
  in
  let timeout_arg =
    Arg.(
      value & opt float 1000.0
      & info [ "timeout-us" ] ~docv:"US" ~doc:"Watchdog heartbeat timeout in microseconds")
  in
  let ring_arg =
    Arg.(
      value & opt int 0
      & info [ "ring" ] ~docv:"DEPTH"
          ~doc:
            "Mount victims with a submission/completion ring of $(docv) entries (0 = \
             synchronous path): the watchdog must also tear the ring down")
  in
  let mutate_arg =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Disable the orphan GC (engine self-test): exit 0 only if the leak invariant \
             provably catches it")
  in
  Cmd.v
    (Cmd.info "procfail"
       ~doc:
         "Kill or wedge a LibFS at sampled points mid-script, then assert watchdog escalation, \
          verifier-gated reclamation and zero leaked pages from a second process")
    Term.(
      const run $ seed_arg $ scripts_arg $ ops_arg $ kill_arg $ hang_arg $ timeout_arg
      $ ring_arg $ mutate_arg)

(* ------------------------------------------------------------------ *)
(* verifycheck: incremental-vs-full verification differential gate *)

let verifycheck_cmd =
  let module Vdiff = Trio_check.Vdiff in
  let run seeds script_seed script_len mutate =
    if mutate then begin
      Printf.printf
        "drop-writes mutation armed: incremental verification must diverge from the full walk\n";
      let v = Vdiff.mutation_self_test ~seeds ~script_seed ~script_len () in
      Format.printf "%a@." Vdiff.pp_verdict v;
      if v.Vdiff.vd_diffs <> [] then begin
        Printf.printf "mutation caught: sabotaged dirty tracking changed the verdicts\n";
        0
      end
      else begin
        Printf.printf "MUTATION NOT CAUGHT: the differential gate is blind to a broken tracker\n";
        1
      end
    end
    else begin
      let v = Vdiff.differential ~seeds ~script_seed ~script_len () in
      Format.printf "%a@." Vdiff.pp_verdict v;
      if v.Vdiff.vd_diffs = [] then 0 else 1
    end
  in
  let seeds_arg =
    Arg.(value & opt int 2 & info [ "seeds" ] ~doc:"Seeds per corruption-campaign script")
  in
  let script_seed_arg =
    Arg.(value & opt int 1 & info [ "script-seed" ] ~doc:"Seed for the exploration op script")
  in
  let script_len_arg =
    Arg.(value & opt int 6 & info [ "script-len" ] ~doc:"Ops in the exploration script")
  in
  let mutate_arg =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Drop pages from the MMU write-set (gate self-test): exit 0 only if the \
             differential provably catches the sabotaged dirty tracking")
  in
  Cmd.v
    (Cmd.info "verifycheck"
       ~doc:
         "Run the attack suite and a pinned-seed crash exploration under full and incremental \
          verification and demand byte-identical verdicts")
    Term.(const run $ seeds_arg $ script_seed_arg $ script_len_arg $ mutate_arg)

(* ------------------------------------------------------------------ *)
(* snap: whole-FS CoW snapshots — take/list/rollback/clone demo, the
   crash-during-commit exploration, and the torn-commit self-test *)

let snap_cmd =
  let module Explore = Trio_check.Explore in
  let module Script = Trio_check.Script in
  let module Layout = Trio_core.Layout in
  (* Reconstruct "/d/f" paths from the root's (ino, parent) graph. *)
  let paths_of_entries entries =
    let by_ino = Hashtbl.create 16 in
    List.iter
      (fun (e : Controller.snap_entry) ->
        match Controller.snapshot_entry_checkpoint e with
        | Error _ -> ()
        | Ok ck -> (
          match Layout.decode_dentry ck.Controller.ck_dentry with
          | Some (Ok (inode, name)) -> Hashtbl.replace by_ino e.Controller.e_ino (e, ck, inode, name)
          | _ -> ()))
      entries;
    let rec path_of ino =
      if ino = Controller.root_ino then ""
      else
        match Hashtbl.find_opt by_ino ino with
        | None -> "?"
        | Some (e, _, _, name) -> path_of e.Controller.e_parent ^ "/" ^ name
    in
    Hashtbl.fold (fun ino (_, ck, inode, _) acc -> (path_of ino, ck, inode) :: acc) by_ino []
    |> List.sort compare
  in
  let demo files =
    Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
        let ctl = rig.Trio_workloads.Rig.ctl in
        let pmem = rig.Trio_workloads.Rig.pmem in
        let libfs = Rig.mount_arckfs ~delegated:false rig in
        let fs = Libfs.ops libfs in
        ok "mkdir" (fs.Fs.mkdir "/snap" 0o755);
        List.iter
          (fun i ->
            ok "write"
              (Fs.write_file fs
                 (Printf.sprintf "/snap/f%02d" i)
                 (String.make ((i * 533 mod 6000) + 32) 'v')))
          (List.init files Fun.id);
        Libfs.unmap_everything libfs;
        (* take *)
        let epoch = ok "snap take" (Controller.snapshot_take ctl) in
        let slot =
          match
            List.filter
              (fun s -> Controller.snapshot_root_status pmem ~slot:s = Some epoch)
              [ 0; 1 ]
          with
          | [ s ] -> s
          | _ ->
            Printf.eprintf "published root not found in exactly one slot\n";
            exit 1
        in
        Printf.printf "snap take: epoch %d committed to slot %d (%d payload pages pinned)\n"
          epoch slot
          (Controller.snap_pinned_count ctl);
        (* list *)
        let listed =
          match Controller.snapshot_entries ctl with
          | Error m ->
            Printf.eprintf "snap list failed: %s\n" m;
            exit 1
          | Ok (e, entries) ->
            Printf.printf "snap list: epoch %d, %d entries\n" e (List.length entries);
            let paths = paths_of_entries entries in
            List.iter
              (fun (path, (ck : Controller.checkpoint), (inode : Layout.inode)) ->
                Printf.printf "  %-24s ino %-4d %-4s size %-6d ck pages %d\n"
                  (if path = "" then "/" else path)
                  inode.Layout.ino
                  (match inode.Layout.ftype with Trio_core.Fs_types.Dir -> "dir" | _ -> "reg")
                  ck.Controller.ck_size (List.length ck.Controller.ck_pages))
              paths;
            paths
        in
        (* mutate after the snapshot: an append the rollback must undo *)
        let victim = "/snap/f00" in
        let before = String.length (ok "read" (Fs.read_file fs victim)) in
        let fd = ok "reopen" (fs.Fs.open_ victim [ Trio_core.Fs_types.O_RDWR ]) in
        ignore (ok "append" (fs.Fs.append fd (Bytes.make 257 't')));
        Libfs.unmap_everything libfs;
        let mutated = String.length (ok "read" (Fs.read_file fs victim)) in
        (* rollback *)
        let ino = (ok "stat" (fs.Fs.stat victim)).Trio_core.Fs_types.st_ino in
        (match Controller.snapshot_rollback_file ctl ~proc:libfs.Libfs.proc ~ino with
        | Ok () -> ()
        | Error m ->
          Printf.eprintf "snap rollback refused: %s\n" m;
          exit 1);
        let fs2 = Libfs.ops (Rig.mount_arckfs ~delegated:false rig) in
        let after = String.length (ok "read" (Fs.read_file fs2 victim)) in
        Printf.printf
          "snap rollback: %s  %d bytes -> %d after append -> %d back at epoch %d (verifier \
           re-certified)\n"
          victim before mutated after epoch;
        if after <> before then begin
          Printf.eprintf "rollback did not restore the snapshot size\n";
          exit 1
        end;
        (* clone: materialize the listed tree under /clone *)
        ok "mkdir clone" (fs2.Fs.mkdir "/clone" 0o755);
        let cloned = ref 0 in
        List.iter
          (fun (path, (_ : Controller.checkpoint), (inode : Layout.inode)) ->
            if path <> "" then
              match inode.Layout.ftype with
              | Trio_core.Fs_types.Dir -> ok "clone mkdir" (fs2.Fs.mkdir ("/clone" ^ path) 0o755)
              | _ ->
                let data = ok "clone read" (Fs.read_file fs2 path) in
                ok "clone write" (Fs.write_file fs2 ("/clone" ^ path) data);
                incr cloned)
          listed;
        Printf.printf "snap clone: %d file(s) copied into /clone\n" !cloned;
        let gc = Controller.gc_once ctl in
        if (not gc.Controller.gc_invariant_ok) || gc.Controller.gc_leaked > 0 then begin
          Format.printf "page accounting broken: %a@." Controller.pp_gc_report gc;
          exit 1
        end;
        Printf.printf "accounting: %d page(s) snap-pinned, invariant holds, 0 leaked\n"
          gc.Controller.gc_snap_pinned;
        0)
  in
  let explore seed scripts ops kill_points =
    let rng = Trio_util.Rng.create seed in
    let failed = ref false in
    List.iteri
      (fun i script ->
        if not !failed then begin
          Printf.printf "script %d/%d: %s\n%!" (i + 1) scripts (Script.to_string script);
          let config = { Explore.default_snap_config with sc_kill_points = kill_points } in
          let r = Explore.explore_snapshot_commit ~config script in
          Format.printf "  %a@." Explore.pp_snap_report r;
          match r.Explore.sn_failure with
          | None -> ()
          | Some cx ->
            failed := true;
            Format.printf "VIOLATION:@.%a" Explore.pp_counterexample cx
        end)
      (List.init scripts (fun _ -> Script.generate rng ~len:ops));
    if !failed then 1 else 0
  in
  let self_test seed ops kill_points =
    Printf.printf
      "torn-commit mutation armed: root record published before its payload, into the live \
       slot\n";
    let rng = Trio_util.Rng.create seed in
    let script = Script.generate rng ~len:ops in
    Printf.printf "script: %s\n%!" (Script.to_string script);
    let config = { Explore.sc_kill_points = kill_points; sc_torn = true } in
    let r = Explore.explore_snapshot_commit ~config script in
    Format.printf "%a@." Explore.pp_snap_report r;
    match r.Explore.sn_failure with
    | Some cx ->
      Format.printf "torn-mode exploration broke elsewhere:@.%a" Explore.pp_counterexample cx;
      1
    | None ->
      if r.Explore.sn_zero_roots > 0 then begin
        Printf.printf "mutation caught: %d crash state(s) with zero valid roots observed\n"
          r.Explore.sn_zero_roots;
        0
      end
      else begin
        Printf.printf "MUTATION NOT CAUGHT: no zero-valid-root window observed\n";
        1
      end
  in
  let run seed files scripts ops kill_points mutate =
    if mutate then self_test seed ops kill_points
    else if scripts > 0 then explore seed scripts ops kill_points
    else demo files
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Script/sampling seed") in
  let files_arg =
    Arg.(value & opt int 12 & info [ "files" ] ~doc:"Files to build for the take/list/rollback/clone demo")
  in
  let scripts_arg =
    Arg.(
      value & opt int 0
      & info [ "explore" ] ~docv:"N"
          ~doc:
            "Instead of the demo, explore $(docv) generated scripts, killing publication at \
             every sampled point and demanding a certifiable root in every crash state")
  in
  let ops_arg = Arg.(value & opt int 5 & info [ "ops" ] ~doc:"Ops per generated script") in
  let kill_arg =
    Arg.(
      value & opt int 12
      & info [ "kill-points" ] ~docv:"N" ~doc:"Sampled kill injection points per script")
  in
  let mutate_arg =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Sabotage the commit ordering (engine self-test): exit 0 only if the exploration \
             provably observes a zero-valid-root crash state")
  in
  Cmd.v
    (Cmd.info "snap"
       ~doc:
         "Whole-FS CoW snapshots: take, list, verifier-gated rollback and clone, plus the \
          crash-during-commit exploration campaign")
    Term.(const run $ seed_arg $ files_arg $ scripts_arg $ ops_arg $ kill_arg $ mutate_arg)

(* ------------------------------------------------------------------ *)
(* micro: one microbenchmark on one fs *)

let micro_cmd =
  let run fs_name op threads =
    Rig.run ~nodes:8 ~cpus_per_node:28 ~pages_per_node:(1 lsl 19) ~store_data:false (fun rig ->
        let vfs = Rig.mount_fs ~store_data:false rig fs_name in
        let bench =
          match op with
          | "create" -> Trio_workloads.Fxmark.find "MWCL"
          | "open" -> Trio_workloads.Fxmark.find "MRPL"
          | "unlink" -> Trio_workloads.Fxmark.find "MWUL"
          | "rename" -> Trio_workloads.Fxmark.find "MWRL"
          | "readdir" -> Trio_workloads.Fxmark.find "MRDL"
          | "truncate" -> Trio_workloads.Fxmark.find "DWTL"
          | other -> (
            try Trio_workloads.Fxmark.find other
            with Not_found ->
              Printf.eprintf "unknown op %s\n" other;
              exit 2)
        in
        let r =
          Trio_workloads.Fxmark.run rig vfs bench ~threads ~max_ops:12_000 ~max_ns:10.0e6 ()
        in
        Format.printf "%s %s: %a@." fs_name bench.Trio_workloads.Fxmark.name
          Trio_workloads.Runner.pp_result r;
        Format.printf "per-op latency breakdown:@.%a" Vfs.pp_breakdown vfs;
        0)
  in
  let fs_arg = Arg.(value & opt string "arckfs" & info [ "fs" ] ~doc:"File system") in
  let op_arg =
    Arg.(value & opt string "create" & info [ "op" ] ~doc:"create|open|unlink|rename|readdir|truncate or an FxMark name")
  in
  let thr_arg = Arg.(value & opt int 28 & info [ "threads" ] ~doc:"Thread count") in
  Cmd.v (Cmd.info "micro" ~doc:"Run one metadata microbenchmark")
    Term.(const run $ fs_arg $ op_arg $ thr_arg)

(* ------------------------------------------------------------------ *)
(* qos: the multi-tenant QoS plane (DESIGN.md §4.17) *)

let qos_cmd =
  let module Explore = Trio_check.Explore in
  let module Ycsb = Trio_workloads.Ycsb in
  let module Attacks = Trio_attacks.Attacks in
  let run kill_points ops ring timeout_us mutate =
    let config =
      {
        Explore.default_qos_config with
        Explore.qd_kill_points = kill_points;
        qd_ops = ops;
        qd_ring = ring;
        qd_timeout_ns = timeout_us *. 1000.0;
      }
    in
    if mutate then begin
      Controller.set_qos_bypass true;
      Printf.printf "bypass mutation armed: every tenant is charged zero tokens\n%!";
      Fun.protect
        ~finally:(fun () -> Controller.set_qos_bypass false)
        (fun () ->
          let r = Explore.explore_qos ~config () in
          match r.Explore.qr_failure with
          | Some cx
            when String.length cx.Explore.cx_detail >= 30
                 && String.sub cx.Explore.cx_detail 0 30 = "the victim was never throttled" ->
            Printf.printf "mutation caught: %s\n" cx.Explore.cx_detail;
            0
          | Some cx ->
            Format.printf "unexpected failure:@.%a@." Explore.pp_counterexample cx;
            1
          | None ->
            Printf.printf "MUTATION NOT CAUGHT: campaign passed with QoS charging disabled\n";
            1)
    end
    else begin
      (* A live multi-tenant mix first so the counters mean something:
         two honest YCSB tenants, a byzantine noisy neighbour on a
         starvation share, and a bulk tenant SIGKILLed mid-run. *)
      Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:(1 lsl 14) ~store_data:true
        (fun rig ->
          let nb = Attacks.noisy_neighbor ~qos_share:0.02 rig in
          let specs =
            [
              Ycsb.spec ~share:1.0 ~ops:40 "honest-a" Ycsb.A;
              Ycsb.spec ~share:1.0 ~ops:40 "honest-c" Ycsb.C;
              Ycsb.spec ~share:0.1 ~ops:160 ~kill_after:120 "killer" Ycsb.A;
            ]
          in
          let results =
            Ycsb.run rig ~records:32 ~value_size:32 ~ring_depth:8
              ~chaos:[ Attacks.neighbor_fiber nb ] specs
          in
          List.iter (fun r -> Format.printf "%a@." Ycsb.pp_tenant_result r) results;
          Printf.printf "byzantine neighbour: %d cycle(s), %d corruption(s) rejected\n"
            nb.Attacks.nb_cycles nb.Attacks.nb_rejected;
          Format.printf "@.per-tenant shares, charges and throttling:@.%a"
            Controller.pp_qos_stats
            (Controller.qos_stats rig.Rig.ctl);
          Format.printf
            "@.ring plane (SQ-full, park/wake and producer park time per shard):@.%a@."
            Controller.pp_ring_stats
            (Controller.ring_stats rig.Rig.ctl);
          (* Reclaim the SIGKILLed tenant before the rig unmounts. *)
          Sched.delay 2.0e6;
          let escalated = Controller.watchdog_once rig.Rig.ctl ~timeout_ns:1.0e6 in
          ignore (Controller.drain_unverified rig.Rig.ctl : int);
          let gc = Controller.gc_once rig.Rig.ctl in
          Printf.printf
            "reclaim: watchdog escalated %d process(es), gc reclaimed %d page(s), ledger %s\n"
            (List.length escalated) gc.Controller.gc_reclaimed_pages
            (if gc.Controller.gc_invariant_ok then "balanced" else "IMBALANCED");
          0)
      |> ignore;
      Printf.printf "\nkill exploration: SIGKILLs inside throttled/parked states\n%!";
      let r = Explore.explore_qos ~config () in
      Format.printf "%a@." Explore.pp_qos_report r;
      match r.Explore.qr_failure with None -> 0 | Some _ -> 1
    end
  in
  let kill_arg =
    Arg.(
      value & opt int 12
      & info [ "kill-points" ] ~docv:"N" ~doc:"Sampled kill injection points")
  in
  let ops_arg =
    Arg.(value & opt int 10 & info [ "ops" ] ~doc:"Write+share cycles the throttled victim runs")
  in
  let ring_arg =
    Arg.(
      value & opt int 4
      & info [ "ring" ] ~docv:"DEPTH"
          ~doc:"Victim ring depth; throttle parks at the ring mouth are kill points")
  in
  let timeout_arg =
    Arg.(
      value & opt float 1000.0
      & info [ "timeout-us" ] ~docv:"US" ~doc:"Watchdog heartbeat timeout in microseconds")
  in
  let mutate_arg =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Disable QoS charging (engine self-test): exit 0 only if the campaign provably \
             notices that the victim is never throttled")
  in
  Cmd.v
    (Cmd.info "qos"
       ~doc:
         "Run a multi-tenant byzantine/SIGKILL mix, dump per-tenant QoS charges and throttle \
          counters, then SIGKILL a throttled victim at sampled points and assert reclamation")
    Term.(const run $ kill_arg $ ops_arg $ ring_arg $ timeout_arg $ mutate_arg)

(* ------------------------------------------------------------------ *)
(* dircheck: the ordered directory-index plane (DESIGN.md §4.18) *)

let dircheck_cmd =
  let module Explore = Trio_check.Explore in
  let run kill_points entries capacity timeout_us mutate =
    if mutate then begin
      Printf.printf
        "skip-index-update mutation armed: dentries keep landing, the B-link tree is never \
         maintained\n%!";
      if Explore.dir_index_mutation_caught ~capacity () then begin
        Printf.printf
          "mutation caught: I5 flagged the index/dentry divergence at the sharing point\n";
        0
      end
      else begin
        Printf.printf "MUTATION NOT CAUGHT: I5 missed an unmaintained directory index\n";
        1
      end
    end
    else begin
      let config =
        {
          Explore.dx_kill_points = kill_points;
          dx_entries = entries;
          dx_capacity = capacity;
          dx_timeout_ns = timeout_us *. 1000.0;
        }
      in
      let r = Explore.explore_dir_index ~config () in
      Format.printf "%a@." Explore.pp_dir_report r;
      match r.Explore.dx_failure with
      | None -> 0
      | Some cx ->
        Format.printf "VIOLATION:@.%a" Explore.pp_counterexample cx;
        1
    end
  in
  let kill_arg =
    Arg.(
      value & opt int 18
      & info [ "kill-points" ] ~docv:"N" ~doc:"Sampled kill injection points inside index updates")
  in
  let entries_arg =
    Arg.(
      value & opt int 16
      & info [ "entries" ] ~doc:"Creates the victim attempts (with periodic unlink/rename)")
  in
  let capacity_arg =
    Arg.(
      value & opt int 4
      & info [ "capacity" ] ~docv:"K"
          ~doc:"Forced B-link node capacity, so a handful of creates already splits (min 2)")
  in
  let timeout_arg =
    Arg.(
      value & opt float 1000.0
      & info [ "timeout-us" ] ~docv:"US" ~doc:"Watchdog heartbeat timeout in microseconds")
  in
  let mutate_arg =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Silently drop index maintenance in the LibFS (engine self-test): exit 0 only if \
             verifier invariant I5 provably catches the divergence")
  in
  Cmd.v
    (Cmd.info "dircheck"
       ~doc:
         "SIGKILL a LibFS inside B-link directory-index updates at sampled points and demand \
          every crash state certifies as consistent or cleanly unindexed")
    Term.(const run $ kill_arg $ entries_arg $ capacity_arg $ timeout_arg $ mutate_arg)

let () =
  let doc = "Trio/ArckFS userspace NVM file system simulator" in
  let main =
    Cmd.group (Cmd.info "trioctl" ~doc)
      [
        info_cmd;
        smoke_cmd;
        fsck_cmd;
        attacks_cmd;
        crashcheck_cmd;
        verifycheck_cmd;
        faults_cmd;
        scrub_cmd;
        procfail_cmd;
        snap_cmd;
        micro_cmd;
        stats_cmd;
        trace_cmd;
        qos_cmd;
        dircheck_cmd;
      ]
  in
  exit (Cmd.eval' main)
