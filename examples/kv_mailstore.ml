(* KVFS: unprivileged customization for small-file workloads (paper §5).

     dune exec examples/kv_mailstore.exe

   A mail server stores thousands of small messages.  Through the
   generic POSIX interface each access pays for a file descriptor and
   index walks; KVFS — a LibFS customization touching only auxiliary
   state, deployed without any special privilege — replaces them with
   get/set.  Because the core state is unchanged, a plain ArckFS LibFS
   in another process still reads the same messages. *)

module Rig = Trio_workloads.Rig
module Libfs = Arckfs.Libfs
module Sched = Trio_sim.Sched
module Fs = Trio_core.Fs_intf
module Vfs = Trio_core.Vfs
open Trio_core.Fs_types

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s failed: %s" what (errno_to_string e))

let message i =
  Printf.sprintf "From: user%d@example.com\nSubject: hello %d\n\n%s\n" (i mod 50) i
    (String.make (500 + (i * 37 mod 2000)) 'm')

let () =
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
      let sched = rig.Rig.sched in
      let libfs = Rig.mount_arckfs ~delegated:false rig in
      let kv = ok "mount kvfs" (Kvfs.mount libfs ~dir:"/mail") in
      let n = 2000 in

      print_endline "== KVFS mail store ==";
      let t0 = Sched.now sched in
      for i = 0 to n - 1 do
        ok "set" (Kvfs.set kv (Printf.sprintf "msg%05d" i) (Bytes.of_string (message i)))
      done;
      let store_time = Sched.now sched -. t0 in
      Printf.printf "stored %d messages via set: %.2f virtual us/msg\n" n
        (store_time /. float_of_int n /. 1e3);

      (* zero-copy fetch: one reusable buffer, no allocation per message *)
      let t0 = Sched.now sched in
      let bytes = ref 0 in
      let buf = Bytes.create Kvfs.max_file_size in
      for i = 0 to n - 1 do
        bytes := !bytes + ok "get" (Kvfs.get_into kv (Printf.sprintf "msg%05d" i) buf)
      done;
      let get_time = Sched.now sched -. t0 in
      Printf.printf "fetched %d messages (%d bytes) via get_into: %.2f virtual us/msg\n" n !bytes
        (get_time /. float_of_int n /. 1e3);

      (* the same messages through the generic POSIX LibFS *)
      let posix = Vfs.ops (Vfs.wrap ~sched (Libfs.ops libfs)) in
      let t0 = Sched.now sched in
      for i = 0 to n - 1 do
        ignore (ok "posix read" (Fs.read_file posix (Printf.sprintf "/mail/msg%05d" i)))
      done;
      let posix_time = Sched.now sched -. t0 in
      Printf.printf "same fetch via POSIX open/read/close: %.2f virtual us/msg (%.2fx slower)\n"
        (posix_time /. float_of_int n /. 1e3)
        (posix_time /. get_time);

      (* and from a different process entirely *)
      Libfs.unmap_everything libfs;
      let other = Rig.mount_arckfs ~delegated:false rig in
      let other_fs = Vfs.ops (Vfs.wrap ~sched (Libfs.ops other)) in
      let m = ok "cross-process read" (Fs.read_file other_fs "/mail/msg00042") in
      Printf.printf
        "another process (plain ArckFS) reads msg00042: %d bytes — customization is private\n"
        (String.length m))
