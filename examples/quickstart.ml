(* Quickstart: boot a simulated NVM machine, mount ArckFS, and use the
   POSIX-like API.

     dune exec examples/quickstart.exe

   Everything runs inside the deterministic simulator: the times printed
   are virtual nanoseconds of the modeled Optane machine. *)

module Rig = Trio_workloads.Rig
module Libfs = Arckfs.Libfs
module Sched = Trio_sim.Sched
module Fs = Trio_core.Fs_intf
module Vfs = Trio_core.Vfs
open Trio_core.Fs_types

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s failed: %s" what (errno_to_string e))

let () =
  (* A 2-socket machine with a small PM module per socket. *)
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:32768 ~store_data:true (fun rig ->
      let sched = rig.Rig.sched in
      (* Mount an ArckFS LibFS for process 101, dispatched through the
         instrumented VFS layer. *)
      let libfs = Rig.mount_arckfs ~delegated:false rig in
      let vfs = Vfs.wrap ~sched (Libfs.ops libfs) in
      let fs = Vfs.ops vfs in

      print_endline "== Trio/ArckFS quickstart ==";

      (* Directories and files *)
      ok "mkdir" (fs.Fs.mkdir "/projects" 0o755);
      ok "mkdir" (fs.Fs.mkdir "/projects/trio" 0o755);
      let t0 = Sched.now sched in
      let fd = ok "create" (fs.Fs.create "/projects/trio/notes.txt" 0o644) in
      Printf.printf "created notes.txt in %.0f virtual ns (no kernel involved)\n"
        (Sched.now sched -. t0);

      (* Data path *)
      let n = ok "append" (fs.Fs.append fd (Bytes.of_string "ArckFS: direct NVM access.\n")) in
      Printf.printf "appended %d bytes\n" n;
      ignore (ok "append" (fs.Fs.append fd (Bytes.of_string "No VFS, no syscalls.\n")));
      ok "close" (fs.Fs.close fd);

      let content = ok "read" (Fs.read_file fs "/projects/trio/notes.txt") in
      Printf.printf "read back %d bytes:\n%s" (String.length content) content;

      (* Metadata *)
      let st = ok "stat" (fs.Fs.stat "/projects/trio/notes.txt") in
      Printf.printf "stat: ino=%d size=%d mode=%o\n" st.st_ino st.st_size st.st_mode;

      ok "rename" (fs.Fs.rename "/projects/trio/notes.txt" "/projects/trio/README");
      let entries = ok "readdir" (fs.Fs.readdir "/projects/trio") in
      Printf.printf "directory now contains: %s\n"
        (String.concat ", " (List.map (fun e -> e.d_name) entries));

      (* A larger file, exercising index pages and multi-page I/O *)
      let big = Bytes.init 100_000 (fun i -> Char.chr (i mod 256)) in
      let fd = ok "create big" (fs.Fs.create "/projects/trio/blob.bin" 0o644) in
      ignore (ok "append big" (fs.Fs.append fd big));
      let buf = Bytes.create 1000 in
      ignore (ok "pread" (fs.Fs.pread fd buf 50_000));
      ok "close" (fs.Fs.close fd);
      Printf.printf "blob.bin: wrote 100000 bytes, spot-checked offset 50000: %s\n"
        (if Bytes.get buf 0 = Char.chr (50_000 mod 256) then "OK" else "MISMATCH");

      (* Durability: crash the device, recover, remount. *)
      print_endline "simulating power failure...";
      Trio_nvm.Pmem.crash rig.Rig.pmem;
      Trio_core.Controller.crash_recover rig.Rig.ctl;
      let libfs2 = Rig.mount_arckfs ~delegated:false rig in
      let fs2 = Libfs.ops libfs2 in
      let content = ok "read after crash" (Fs.read_file fs2 "/projects/trio/README") in
      Printf.printf "after crash + recovery, README still reads %d bytes. done.\n"
        (String.length content);

      (* The VFS layer counted every operation above. *)
      Printf.printf "\nper-op latency breakdown (pre-crash handle):\n";
      Format.printf "%a" Vfs.pp_breakdown vfs)
