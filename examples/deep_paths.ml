(* FPFS: full-path indexing for deep hierarchies (paper §5).

     dune exec examples/deep_paths.exe

   Build-system and container workloads resolve paths twenty components
   deep.  FPFS replaces ArckFS' per-directory hash tables with one
   global path table — again touching only private auxiliary state — so
   resolution is a single probe.  The documented trade-off: renaming a
   directory invalidates the cache. *)

module Rig = Trio_workloads.Rig
module Libfs = Arckfs.Libfs
module Sched = Trio_sim.Sched
module Fs = Trio_core.Fs_intf
module Vfs = Trio_core.Vfs
open Trio_core.Fs_types

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s failed: %s" what (errno_to_string e))

let deep_dir depth = "/" ^ String.concat "/" (List.init depth (Printf.sprintf "level%02d"))

let () =
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:32768 ~store_data:true (fun rig ->
      let sched = rig.Rig.sched in
      let depth = 20 in
      let dir = deep_dir depth in

      let time n f =
        let t0 = Sched.now sched in
        for i = 1 to n do
          f i
        done;
        (Sched.now sched -. t0) /. float_of_int n /. 1e3
      in

      print_endline "== deep-path resolution: ArckFS vs FPFS ==";
      (* plain ArckFS *)
      let arck = Rig.mount_arckfs ~delegated:false rig in
      let arck_fs = Vfs.ops (Vfs.wrap ~sched (Libfs.ops arck)) in
      ok "mkdir_p" (Fs.mkdir_p arck_fs dir);
      for i = 0 to 99 do
        ignore (ok "seed" (arck_fs.Fs.create (Printf.sprintf "%s/obj%03d" dir i) 0o644))
      done;
      let arck_stat =
        time 500 (fun i -> ignore (ok "stat" (arck_fs.Fs.stat (Printf.sprintf "%s/obj%03d" dir (i mod 100)))))
      in
      Printf.printf "ArckFS  stat at depth %d: %.2f virtual us (walks %d components)\n" depth
        arck_stat depth;

      (* FPFS over the same namespace, same process *)
      let fpfs = Fpfs.mount arck in
      let fp = Vfs.ops (Vfs.wrap ~sched (Fpfs.ops fpfs)) in
      (* warm the path table *)
      ignore (ok "warm" (fp.Fs.stat (dir ^ "/obj000")));
      let fp_stat =
        time 500 (fun i -> ignore (ok "stat" (fp.Fs.stat (Printf.sprintf "%s/obj%03d" dir (i mod 100)))))
      in
      Printf.printf "FPFS    stat at depth %d: %.2f virtual us (one global-hash probe) — %.1fx\n"
        depth fp_stat (arck_stat /. fp_stat);
      Printf.printf "path table holds %d entries\n" (Fpfs.cached_paths fpfs);

      (* the trade-off *)
      print_endline "\n== the trade-off: directory rename invalidates the path table ==";
      ok "rename" (fp.Fs.rename "/level00" "/renamed00");
      Printf.printf "after renaming the top directory, path table holds %d entries\n"
        (Fpfs.cached_paths fpfs);
      (match fp.Fs.stat (dir ^ "/obj000") with
      | Error ENOENT -> print_endline "stale path correctly fails with ENOENT"
      | _ -> print_endline "UNEXPECTED: stale path resolved");
      let fresh = "/renamed00/" ^ String.concat "/" (List.init (depth - 1) (fun i -> Printf.sprintf "level%02d" (i + 1))) in
      ignore (ok "fresh stat" (fp.Fs.stat (fresh ^ "/obj000")));
      print_endline "the new path resolves (and re-fills the table as it goes)")
