(* File sharing across the trust boundary (paper §3.2, Figure 2).

     dune exec examples/sharing.exe

   Two mutually-untrusting processes, each with a private ArckFS LibFS,
   share a file.  The kernel controller enforces exclusive write access
   with leases; every write-access handoff runs the integrity verifier.
   A third pair of processes shares through a trust group, skipping the
   verification cost. *)

module Rig = Trio_workloads.Rig
module Libfs = Arckfs.Libfs
module Controller = Trio_core.Controller
module Stats = Trio_sim.Stats
module Sched = Trio_sim.Sched
module Fs = Trio_core.Fs_intf
module Vfs = Trio_core.Vfs
open Trio_core.Fs_types

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s failed: %s" what (errno_to_string e))

let () =
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:32768 ~store_data:true
    ~lease_ns:2.0e6 (fun rig ->
      let sched = rig.Rig.sched in
      print_endline "== sharing a file between untrusted processes ==";

      (* Alice writes a document through her own LibFS. *)
      let alice = Rig.mount_arckfs ~delegated:false ~uid:1000 rig in
      let alice_fs = Vfs.ops (Vfs.wrap ~sched (Libfs.ops alice)) in
      ok "alice write" (Fs.write_file alice_fs "/doc.txt" "draft v1, by alice\n");
      Printf.printf "alice wrote /doc.txt (her LibFS holds the write mapping)\n";

      (* Bob (same uid: think two daemons of one user that do NOT trust
         each other's code) opens the file: the controller waits for the
         handoff, runs the verifier, and only then maps it for him. *)
      let bob = Rig.mount_arckfs ~delegated:false ~uid:1000 rig in
      let bob_fs = Vfs.ops (Vfs.wrap ~sched (Libfs.ops bob)) in
      Libfs.unmap_everything alice;
      Printf.printf "alice released her mappings; the verifier checked the core state\n";
      let content = ok "bob read" (Fs.read_file bob_fs "/doc.txt") in
      Printf.printf "bob reads: %s" content;

      (* Bob appends; when the file comes back to alice, it is verified
         again. *)
      let fd = ok "bob open" (bob_fs.Fs.open_ "/doc.txt" [ O_RDWR ]) in
      ignore (ok "bob append" (bob_fs.Fs.append fd (Bytes.of_string "edits, by bob\n")));
      ok "close" (bob_fs.Fs.close fd);
      Libfs.unmap_everything bob;
      let content = ok "alice reread" (Fs.read_file alice_fs "/doc.txt") in
      Printf.printf "alice now sees:\n%s" content;

      let cstats = Controller.stats rig.Rig.ctl in
      Printf.printf
        "controller spent (virtual us): map=%.1f unmap=%.1f verify=%.1f\n\n"
        (Stats.get cstats "map" /. 1e3)
        (Stats.get cstats "unmap" /. 1e3)
        (Stats.get cstats "verify" /. 1e3);

      (* Lease-based handoff under contention: both write concurrently. *)
      print_endline "== contended writes: leases force the handoff ==";
      let t0 = Sched.now sched in
      let buf = Bytes.make 4096 'a' in
      let fda = ok "a open" (alice_fs.Fs.open_ "/doc.txt" [ O_RDWR ]) in
      let fdb = ok "b open" (bob_fs.Fs.open_ "/doc.txt" [ O_RDWR ]) in
      let wg = Trio_sim.Sync.Waitgroup.create 2 in
      Sched.spawn ~cpu:1 sched (fun () ->
          for _ = 1 to 20 do
            ignore (alice_fs.Fs.pwrite fda buf 0)
          done;
          Trio_sim.Sync.Waitgroup.done_ wg);
      Sched.spawn ~cpu:2 sched (fun () ->
          for _ = 1 to 20 do
            ignore (bob_fs.Fs.pwrite fdb buf 4096)
          done;
          Trio_sim.Sync.Waitgroup.done_ wg);
      Trio_sim.Sync.Waitgroup.wait wg;
      Printf.printf "both wrote 20 x 4KiB; %.2f virtual ms including lease ping-pong\n\n"
        ((Sched.now sched -. t0) /. 1e6);

      (* Trust groups: processes that trust each other skip the cost. *)
      print_endline "== trust group: shared LibFS semantics, no verification ==";
      let ctl = rig.Rig.ctl in
      Controller.register_process ctl ~proc:501 ~cred:{ uid = 1000; gid = 1000 } ~group:9 ();
      Controller.register_process ctl ~proc:502 ~cred:{ uid = 1000; gid = 1000 } ~group:9 ();
      ok "map 501" (Controller.map_file ctl ~proc:501 ~ino:Controller.root_ino ~write:true);
      let t0 = Sched.now sched in
      ok "map 502" (Controller.map_file ctl ~proc:502 ~ino:Controller.root_ino ~write:true);
      Printf.printf "second group member acquired write access in %.0f virtual ns (no wait)\n"
        (Sched.now sched -. t0))
