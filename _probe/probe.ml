(* Probe: Dirindex.build with a failing allocator must return Nospace, not hang. *)
let () =
  let sched = Trio_sim.Sched.create () in
  let pm = Trio_nvm.Pmem.create ~sched ~nodes:1 ~pages_per_node:64 () in
  let alloc () = None in
  let free _ = () in
  match
    Trio_core.Dirindex.build pm ~actor:Trio_nvm.Pmem.kernel_actor ~alloc ~free
      ~entries:[ (1, 100); (2, 200) ]
  with
  | Ok _ -> print_endline "OK"
  | Error `Nospace -> print_endline "NOSPACE"
