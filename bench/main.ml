(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) on the simulated machine.

   Usage:
     bench/main.exe                 run everything
     bench/main.exe fig5 fig7       run selected experiments
     bench/main.exe --fast ...      smaller sweeps (quick iteration)

   Experiments (see DESIGN.md §3 for the index):
     fig5  single-thread data & metadata performance
     fig6  fio throughput scaling (1 and 8 NUMA nodes)
     fig7  FxMark metadata scalability
     tab3  sharing cost between untrusted processes
     fig8  sharing-cost breakdown (map/unmap/verify/rebuild)
     fig9  Filebench macrobenchmarks
     tab5  LevelDB db_bench
     fig10 customized LibFSes (KVFS / FPFS)
     sec65 integrity attacks & corruption campaign
     meta  descriptive tables (Table 2, Table 4)
     micro Bechamel wall-clock microbenchmarks of core data structures

   All performance numbers are virtual-time (deterministic); see
   EXPERIMENTS.md for the shape-by-shape comparison with the paper. *)

module Sched = Trio_sim.Sched
module Numa = Trio_nvm.Numa
module Pmem = Trio_nvm.Pmem
module Rig = Trio_workloads.Rig
module Runner = Trio_workloads.Runner
module Fio = Trio_workloads.Fio
module Fxmark = Trio_workloads.Fxmark
module Filebench = Trio_workloads.Filebench
module Dbbench = Trio_workloads.Dbbench
module Libfs = Arckfs.Libfs
module Controller = Trio_core.Controller
module Dirindex = Trio_core.Dirindex
module Stats = Trio_sim.Stats
module Fs = Trio_core.Fs_intf
module Vfs = Trio_core.Vfs
module Ycsb = Trio_workloads.Ycsb
module Attacks = Trio_attacks.Attacks

let fast = ref false

let section title =
  Printf.printf "\n==== %s %s\n%!" title (String.make (max 1 (66 - String.length title)) '=')

let sub title = Printf.printf "\n-- %s\n%!" title

(* ------------------------------------------------------------------ *)
(* Machine configurations *)

let paper_nodes = 8
let paper_cpus = 28

let one_node_rig f =
  Rig.run ~nodes:1 ~cpus_per_node:paper_cpus ~pages_per_node:(1 lsl 20) ~store_data:false f

let eight_node_rig f =
  Rig.run ~nodes:paper_nodes ~cpus_per_node:paper_cpus ~pages_per_node:(1 lsl 19)
    ~store_data:false f

let threads_1node () = if !fast then [ 1; 4; 28 ] else [ 1; 2; 4; 8; 16; 28 ]
let threads_8node () = if !fast then [ 1; 28; 224 ] else [ 1; 2; 4; 8; 16; 28; 56; 112; 224 ]

(* ------------------------------------------------------------------ *)
(* Printing helpers *)

let print_header name cols =
  Printf.printf "%-14s" name;
  List.iter (fun c -> Printf.printf "%10s" c) cols;
  print_newline ()

let print_row name cells =
  Printf.printf "%-14s" name;
  List.iter (fun v -> Printf.printf "%10.2f" v) cells;
  print_newline ()

(* Per-op latency breakdown of an instrumented VFS handle, rendered
   inside the simulation (the handle does not outlive its rig). *)
let breakdown_of vfs = Format.asprintf "%a" Vfs.pp_breakdown vfs

(* Print a sweep row and, underneath it, the per-op p50/p99 breakdown
   captured at the highest thread count of the sweep. *)
let print_row_with_breakdown name results =
  print_row name (List.map fst results);
  match List.rev results with
  | (_, b) :: _ -> print_string b
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Figure 5: single-thread performance *)

let fig5 () =
  section "Figure 5: single-thread performance";
  let data_fses = [ "nova"; "splitfs"; "strata"; "odinfs"; "arckfs-nd"; "arckfs" ] in
  sub "(a,b) data operations, GiB/s (one thread)";
  print_header "fs" [ "4K-read"; "4K-write"; "2M-read"; "2M-write" ];
  List.iter
    (fun name ->
      let one config =
        eight_node_rig (fun rig ->
            let fs = Rig.mount_fs ~store_data:false rig name in
            let r = Fio.run rig fs config ~max_ops:3000 ~max_ns:30.0e6 () in
            r.Runner.gib_per_s)
      in
      let mk kind block =
        { Fio.threads = 1; block_size = block; file_size = 16 * 1024 * 1024; kind }
      in
      print_row name
        [
          one (mk Fio.Read 4096);
          one (mk Fio.Write 4096);
          one (mk Fio.Read (2 * 1024 * 1024));
          one (mk Fio.Write (2 * 1024 * 1024));
        ])
    data_fses;
  sub "(c,d) metadata operations, ops/us (one thread)";
  let meta_fses = [ "nova"; "strata"; "splitfs"; "odinfs"; "arckfs" ] in
  print_header "fs" [ "open"; "create"; "delete" ];
  List.iter
    (fun name ->
      let run_bench bench =
        eight_node_rig (fun rig ->
            let fs = Rig.mount_fs ~store_data:false rig name in
            let r = Fxmark.run rig fs bench ~threads:1 ~max_ops:3000 ~max_ns:20.0e6 () in
            r.Runner.ops_per_us)
      in
      print_row name
        [
          run_bench (Fxmark.find "MRPL");
          run_bench (Fxmark.find "MWCL");
          run_bench (Fxmark.find "MWUL");
        ])
    meta_fses

(* ------------------------------------------------------------------ *)
(* Figure 6: fio throughput scaling *)

let fig6 () =
  section "Figure 6: data operation throughput (fio), GiB/s";
  let run_sweep ~rig_of ~fses ~threads ~block ~kind label =
    sub label;
    print_header "fs" (List.map string_of_int threads);
    List.iter
      (fun name ->
        let cells =
          List.map
            (fun n ->
              rig_of (fun rig ->
                  let vfs = Rig.mount_fs ~store_data:false rig name in
                  let file_size = max (4 * 1024 * 1024) (4 * block) in
                  let config = { Fio.threads = n; block_size = block; file_size; kind } in
                  let max_ops = if block > 65536 then 4000 else 12000 in
                  let r = Fio.run rig vfs config ~max_ops ~max_ns:10.0e6 () in
                  (r.Runner.gib_per_s, breakdown_of vfs)))
            threads
        in
        print_row_with_breakdown name cells)
      fses
  in
  let one_fses = [ "ext4"; "pmfs"; "nova"; "winefs"; "splitfs"; "arckfs-nd" ] in
  let eight_fses = [ "ext4"; "ext4-raid0"; "nova"; "winefs"; "odinfs"; "splitfs"; "arckfs" ] in
  let big = 2 * 1024 * 1024 in
  run_sweep ~rig_of:one_node_rig ~fses:one_fses ~threads:(threads_1node ()) ~block:4096
    ~kind:Fio.Read "(a) 4KB read, 1 NUMA node";
  run_sweep ~rig_of:one_node_rig ~fses:one_fses ~threads:(threads_1node ()) ~block:4096
    ~kind:Fio.Write "(b) 4KB write, 1 NUMA node";
  run_sweep ~rig_of:one_node_rig ~fses:one_fses ~threads:(threads_1node ()) ~block:big
    ~kind:Fio.Read "(c) 2MB read, 1 NUMA node";
  run_sweep ~rig_of:one_node_rig ~fses:one_fses ~threads:(threads_1node ()) ~block:big
    ~kind:Fio.Write "(d) 2MB write, 1 NUMA node";
  run_sweep ~rig_of:eight_node_rig ~fses:eight_fses ~threads:(threads_8node ()) ~block:4096
    ~kind:Fio.Read "(e) 4KB read, 8 NUMA nodes";
  run_sweep ~rig_of:eight_node_rig ~fses:eight_fses ~threads:(threads_8node ()) ~block:4096
    ~kind:Fio.Write "(f) 4KB write, 8 NUMA nodes";
  run_sweep ~rig_of:eight_node_rig ~fses:eight_fses ~threads:(threads_8node ()) ~block:big
    ~kind:Fio.Read "(g) 2MB read, 8 NUMA nodes";
  run_sweep ~rig_of:eight_node_rig ~fses:eight_fses ~threads:(threads_8node ()) ~block:big
    ~kind:Fio.Write "(h) 2MB write, 8 NUMA nodes"

(* ------------------------------------------------------------------ *)
(* Figure 7: FxMark metadata scalability *)

let fig7 () =
  section "Figure 7: metadata scalability (FxMark), ops/us";
  let fses = [ "ext4"; "pmfs"; "nova"; "winefs"; "odinfs"; "splitfs"; "arckfs" ] in
  let threads = if !fast then [ 1; 28; 224 ] else [ 1; 4; 16; 28; 56; 112; 224 ] in
  List.iter
    (fun bench_name ->
      let bench = Fxmark.find bench_name in
      sub (Printf.sprintf "%s: %s" bench.Fxmark.name bench.Fxmark.description);
      print_header "fs" (List.map string_of_int threads);
      List.iter
        (fun fs_name ->
          let cells =
            List.map
              (fun n ->
                eight_node_rig (fun rig ->
                    let vfs = Rig.mount_fs ~store_data:false rig fs_name in
                    let r =
                      Fxmark.run rig vfs bench ~threads:n ~max_ops:12_000 ~max_ns:10.0e6 ()
                    in
                    (r.Runner.ops_per_us, breakdown_of vfs)))
              threads
          in
          print_row_with_breakdown fs_name cells)
        fses)
    [ "DWTL"; "MRPL"; "MRPM"; "MRPH"; "MRDL"; "MRDM"; "MWCL"; "MWCM"; "MWUL"; "MWUM"; "MWRL"; "MWRM" ]

(* ------------------------------------------------------------------ *)
(* Table 3 + Figure 8: sharing cost *)

(* The paper uses a 1 GiB file with a 100 ms lease; we scale both by 8x
   (128 MiB file, 12.5 ms lease) so the ratio of mapping cost to lease
   time — which produces the paper's 7.8x overhead — is preserved, while
   the small-file row keeps its negligible overhead. *)
let share_file_small = 2 * 1024 * 1024
let share_file_large = 128 * 1024 * 1024
let share_lease_ns = 100.0e6 /. 8.0

let sharing_rig f =
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:(1 lsl 16) ~store_data:false
    ~lease_ns:share_lease_ns f

let get_ok what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ Trio_core.Fs_types.errno_to_string e)

(* two writers ping-ponging 4 KiB stores over one file *)
let write_sharing_body rig ~file_size ~ops_of =
  let buf = Bytes.make 4096 'x' in
  let rngs = Array.init 2 (fun i -> Trio_util.Rng.create i) in
  let r =
    Runner.run ~sched:rig.Rig.sched ~topo:rig.Rig.topo ~threads:2 ~max_ops:60_000
      ~max_ns:500.0e6
      ~body:(fun ~tid ->
        let ops, fd = ops_of tid in
        let off = Trio_util.Rng.int rngs.(tid) (file_size / 4096) * 4096 in
        match ops.Fs.pwrite fd buf off with Ok n -> n | Error _ -> 0)
      ()
  in
  r.Runner.gib_per_s

let run_write_sharing ~mode ~file_size =
  sharing_rig (fun rig ->
      match mode with
      | `Nova ->
        let fs = Vfs.ops (Rig.mount_fs ~store_data:false rig "nova") in
        let fd = get_ok "create" (fs.Fs.create "/shared" 0o666) in
        get_ok "truncate" (fs.Fs.truncate "/shared" file_size);
        write_sharing_body rig ~file_size ~ops_of:(fun _ -> (fs, fd))
      | `Arckfs trust_group ->
        let mk proc =
          let t =
            Libfs.mount ~ctl:rig.Rig.ctl ~proc
              ~cred:{ Trio_core.Fs_types.uid = 1000; gid = 1000 } ()
          in
          if trust_group then
            Controller.register_process rig.Rig.ctl ~proc ~cred:{ uid = 1000; gid = 1000 }
              ~group:77 ();
          t
        in
        let a = mk 301 and b = mk 302 in
        let aops = Libfs.ops a and bops = Libfs.ops b in
        ignore (get_ok "create" (aops.Fs.create "/shared" 0o666));
        get_ok "truncate" (aops.Fs.truncate "/shared" file_size);
        Libfs.unmap_everything a;
        let fda = get_ok "open a" (aops.Fs.open_ "/shared" [ Trio_core.Fs_types.O_RDWR ]) in
        let fdb = get_ok "open b" (bops.Fs.open_ "/shared" [ Trio_core.Fs_types.O_RDWR ]) in
        write_sharing_body rig ~file_size ~ops_of:(fun tid ->
            if tid = 0 then (aops, fda) else (bops, fdb)))

(* Concurrent create+unlink in a shared directory, unmapping after every
   operation (the paper's stress mode); reports us per metadata op. *)
let run_create_sharing ~mode ~prepopulate =
  sharing_rig (fun rig ->
      let measure body =
        let r =
          Runner.run ~sched:rig.Rig.sched ~topo:rig.Rig.topo ~threads:2 ~max_ops:600
            ~max_ns:400.0e6 ~body ()
        in
        r.Runner.elapsed_ns /. float_of_int r.Runner.ops /. 1e3 /. 2.0
      in
      match mode with
      | `Nova ->
        let fs = Vfs.ops (Rig.mount_fs ~store_data:false rig "nova") in
        get_ok "mkdir" (fs.Fs.mkdir "/shared_dir" 0o777);
        for i = 0 to prepopulate - 1 do
          ignore (get_ok "pre" (fs.Fs.create (Printf.sprintf "/shared_dir/base%d" i) 0o644))
        done;
        let counters = Array.make 2 0 in
        measure (fun ~tid ->
            let n = counters.(tid) in
            counters.(tid) <- n + 1;
            let path = Printf.sprintf "/shared_dir/t%d_%d" tid n in
            (match fs.Fs.create path 0o644 with
            | Ok fd ->
              ignore (fs.Fs.close fd);
              ignore (fs.Fs.unlink path)
            | Error _ -> ());
            0)
      | `Arckfs trust_group ->
        let mk proc =
          let t =
            Libfs.mount ~ctl:rig.Rig.ctl ~proc
              ~cred:{ Trio_core.Fs_types.uid = 1000; gid = 1000 }
              ~unmap_after_write:(not trust_group) ()
          in
          if trust_group then
            Controller.register_process rig.Rig.ctl ~proc ~cred:{ uid = 1000; gid = 1000 }
              ~group:77 ();
          t
        in
        let a = mk 311 and b = mk 312 in
        let aops = Libfs.ops a and bops = Libfs.ops b in
        get_ok "mkdir" (aops.Fs.mkdir "/shared_dir" 0o777);
        for i = 0 to prepopulate - 1 do
          ignore (get_ok "pre" (aops.Fs.create (Printf.sprintf "/shared_dir/base%d" i) 0o644))
        done;
        Libfs.unmap_everything a;
        let counters = Array.make 2 0 in
        measure (fun ~tid ->
            let ops = if tid = 0 then aops else bops in
            let n = counters.(tid) in
            counters.(tid) <- n + 1;
            let path = Printf.sprintf "/shared_dir/t%d_%d" tid n in
            (match ops.Fs.create path 0o644 with
            | Ok fd ->
              ignore (ops.Fs.close fd);
              ignore (ops.Fs.unlink path)
            | Error _ -> ());
            0))

let tab3 () =
  section "Table 3: sharing cost (two processes on one file/directory)";
  Printf.printf "(scaled: paper's 1GiB file + 100ms lease -> 128MiB + 12.5ms; see DESIGN.md)\n";
  print_header "workload" [ "NOVA"; "ArckFS"; "Arck-TG" ];
  print_row "4KBw-2MB GiB/s"
    [
      run_write_sharing ~mode:`Nova ~file_size:share_file_small;
      run_write_sharing ~mode:(`Arckfs false) ~file_size:share_file_small;
      run_write_sharing ~mode:(`Arckfs true) ~file_size:share_file_small;
    ];
  print_row "4KBw-128MB GiB/s"
    [
      run_write_sharing ~mode:`Nova ~file_size:share_file_large;
      run_write_sharing ~mode:(`Arckfs false) ~file_size:share_file_large;
      run_write_sharing ~mode:(`Arckfs true) ~file_size:share_file_large;
    ];
  print_row "create-10 us"
    [
      run_create_sharing ~mode:`Nova ~prepopulate:10;
      run_create_sharing ~mode:(`Arckfs false) ~prepopulate:10;
      run_create_sharing ~mode:(`Arckfs true) ~prepopulate:10;
    ];
  print_row "create-100 us"
    [
      run_create_sharing ~mode:`Nova ~prepopulate:100;
      run_create_sharing ~mode:(`Arckfs false) ~prepopulate:100;
      run_create_sharing ~mode:(`Arckfs true) ~prepopulate:100;
    ]

(* Figure 8: where the sharing time goes. *)
let fig8 () =
  section "Figure 8: breakdown of ArckFS' sharing cost";
  let instrumented ~creates ~file_size =
    sharing_rig (fun rig ->
        let mk proc =
          Libfs.mount ~ctl:rig.Rig.ctl ~proc
            ~cred:{ Trio_core.Fs_types.uid = 1000; gid = 1000 }
            ~unmap_after_write:creates ()
        in
        let a = mk 321 and b = mk 322 in
        let aops = Libfs.ops a and bops = Libfs.ops b in
        if creates then begin
          get_ok "mkdir" (aops.Fs.mkdir "/shared_dir" 0o777);
          for i = 0 to 99 do
            ignore (get_ok "pre" (aops.Fs.create (Printf.sprintf "/shared_dir/b%d" i) 0o644))
          done;
          Libfs.unmap_everything a;
          let counters = Array.make 2 0 in
          ignore
            (Runner.run ~sched:rig.Rig.sched ~topo:rig.Rig.topo ~threads:2 ~max_ops:400
               ~max_ns:400.0e6
               ~body:(fun ~tid ->
                 let ops = if tid = 0 then aops else bops in
                 let n = counters.(tid) in
                 counters.(tid) <- n + 1;
                 let path = Printf.sprintf "/shared_dir/t%d_%d" tid n in
                 (match ops.Fs.create path 0o644 with
                 | Ok fd ->
                   ignore (ops.Fs.close fd);
                   ignore (ops.Fs.unlink path)
                 | Error _ -> ());
                 0)
               ())
        end
        else begin
          ignore (get_ok "create" (aops.Fs.create "/shared" 0o666));
          get_ok "truncate" (aops.Fs.truncate "/shared" file_size);
          Libfs.unmap_everything a;
          let fda = get_ok "open" (aops.Fs.open_ "/shared" [ Trio_core.Fs_types.O_RDWR ]) in
          let fdb = get_ok "open" (bops.Fs.open_ "/shared" [ Trio_core.Fs_types.O_RDWR ]) in
          ignore
            (write_sharing_body rig ~file_size ~ops_of:(fun tid ->
                 if tid = 0 then (aops, fda) else (bops, fdb)))
        end;
        let cstats = Controller.stats rig.Rig.ctl in
        let rebuild =
          Stats.get (Libfs.stats_of a) "rebuild" +. Stats.get (Libfs.stats_of b) "rebuild"
        in
        (Stats.get cstats "map", Stats.get cstats "unmap", Stats.get cstats "verify", rebuild))
  in
  let breakdown describe (map, unmap, verify, rebuild) =
    let total = map +. unmap +. verify +. rebuild in
    let pct x = if total > 0.0 then 100.0 *. x /. total else 0.0 in
    Printf.printf "%-22s map %5.1f%%  unmap %5.1f%%  verifier %5.1f%%  aux-state %5.1f%%\n"
      describe (pct map) (pct unmap) (pct verify) (pct rebuild)
  in
  breakdown "4KB-write 16MB" (instrumented ~creates:false ~file_size:share_file_large);
  breakdown "create-100" (instrumented ~creates:true ~file_size:0)

(* Companion to Figure 8: the verifier slice of a write-sharing handoff,
   full re-verification vs the incremental pipeline.  Two processes
   ping-pong write ownership of one large file; each handoff dirties a
   single 4KiB page, so the incremental verifier re-checks one page's
   worth of index entries against the delta checkpoint while a full walk
   re-reads all ~64 index pages of the 128MiB file. *)
let fig8v () =
  section "Figure 8 companion: verifier slice per handoff, full vs incremental";
  let handoffs = 16 in
  let slice mode =
    let prev = Controller.current_verify_mode () in
    Controller.set_verify_mode mode;
    Fun.protect ~finally:(fun () -> Controller.set_verify_mode prev) @@ fun () ->
    sharing_rig (fun rig ->
        let mk proc =
          Libfs.mount ~ctl:rig.Rig.ctl ~proc
            ~cred:{ Trio_core.Fs_types.uid = 1000; gid = 1000 } ()
        in
        let a = mk 351 and b = mk 352 in
        let aops = Libfs.ops a and bops = Libfs.ops b in
        ignore (get_ok "create" (aops.Fs.create "/shared" 0o666));
        get_ok "truncate" (aops.Fs.truncate "/shared" share_file_large);
        Libfs.unmap_everything a;
        (* Warm both processes: first contact ingests the file and builds
           its checkpoint.  That cost is identical in both modes and is
           not part of the steady-state handoff being measured. *)
        List.iter
          (fun (libfs, ops) ->
            let fd = get_ok "open" (ops.Fs.open_ "/shared" [ Trio_core.Fs_types.O_RDWR ]) in
            ignore (ops.Fs.close fd);
            Libfs.unmap_everything libfs)
          [ (a, aops); (b, bops) ];
        let cstats = Controller.stats rig.Rig.ctl in
        let v0 = Stats.get cstats "verify" in
        let buf = Bytes.make 4096 'v' in
        for i = 0 to handoffs - 1 do
          let libfs, ops = if i land 1 = 0 then (a, aops) else (b, bops) in
          let fd = get_ok "open" (ops.Fs.open_ "/shared" [ Trio_core.Fs_types.O_RDWR ]) in
          ignore (get_ok "pwrite" (ops.Fs.pwrite fd buf (i * 4096)));
          ignore (ops.Fs.close fd);
          Libfs.unmap_everything libfs
        done;
        (Stats.get cstats "verify" -. v0) /. float_of_int handoffs /. 1e3)
  in
  let full = slice Controller.Full in
  let incr = slice Controller.Incremental in
  Printf.printf "128MiB file, one 4KiB page dirtied per handoff, %d handoffs\n" handoffs;
  Printf.printf "  full walk   : %8.1f us/handoff\n" full;
  Printf.printf "  incremental : %8.1f us/handoff\n" incr;
  Printf.printf "  reduction   : %8.1fx\n" (if incr > 0.0 then full /. incr else 0.0)

(* ------------------------------------------------------------------ *)
(* Figure 9: Filebench *)

let fig9 () =
  section "Figure 9: Filebench macrobenchmarks, Kops/s";
  let fses = [ "ext4"; "pmfs"; "nova"; "winefs"; "odinfs"; "splitfs"; "arckfs" ] in
  let run_personality ~rig_of ~threads name pname =
    sub name;
    print_header "fs" (List.map string_of_int threads);
    let p = Filebench.find pname in
    List.iter
      (fun fs_name ->
        let cells =
          List.map
            (fun n ->
              rig_of (fun rig ->
                  let fs = Rig.mount_fs ~store_data:false rig fs_name in
                  let r = Filebench.run rig fs p ~threads:n ~max_ops:8000 ~max_ns:20.0e6 () in
                  r.Runner.ops_per_us *. 1000.0))
            threads
        in
        print_row fs_name cells)
      fses
  in
  let t1 = if !fast then [ 1; 28 ] else [ 1; 4; 16; 28 ] in
  let t8 = if !fast then [ 1; 224 ] else [ 1; 16; 56; 112; 224 ] in
  let t16 = if !fast then [ 1; 16 ] else [ 1; 2; 4; 8; 16 ] in
  run_personality ~rig_of:one_node_rig ~threads:t1 "(a) Fileserver, 1 NUMA node" "fileserver";
  run_personality ~rig_of:one_node_rig ~threads:t1 "(b) Webserver, 1 NUMA node" "webserver";
  run_personality ~rig_of:eight_node_rig ~threads:t8 "(c) Fileserver, 8 NUMA nodes" "fileserver";
  run_personality ~rig_of:eight_node_rig ~threads:t8 "(d) Webserver, 8 NUMA nodes" "webserver";
  run_personality ~rig_of:eight_node_rig ~threads:t16 "(e) Webproxy, 8 NUMA nodes" "webproxy";
  run_personality ~rig_of:eight_node_rig ~threads:t16 "(f) Varmail, 8 NUMA nodes" "varmail"

(* ------------------------------------------------------------------ *)
(* Table 5: LevelDB *)

let tab5 () =
  section "Table 5: LevelDB db_bench, ops/ms (one thread)";
  Printf.printf "(scaled: paper's 1M objects -> 8000; fill100K -> 400 objects)\n";
  let fses = [ "ext4"; "nova"; "winefs"; "arckfs"; "arckfs-nd" ] in
  print_header "fs" (List.map Dbbench.workload_name Dbbench.all);
  List.iter
    (fun name ->
      let cells =
        List.map
          (fun w ->
            Rig.run ~nodes:paper_nodes ~cpus_per_node:paper_cpus ~pages_per_node:(1 lsl 17)
              ~store_data:true (fun rig ->
                let fs = Rig.mount_fs ~store_data:true rig name in
                let n =
                  match w with
                  | Dbbench.Fill_100k -> if !fast then 100 else 400
                  | _ -> if !fast then 2000 else 8000
                in
                (Dbbench.run ~sched:rig.Rig.sched fs w ~n).Dbbench.ops_per_ms))
          Dbbench.all
      in
      print_row name cells)
    fses

(* ------------------------------------------------------------------ *)
(* Figure 10: customized file systems *)

let fig10 () =
  section "Figure 10: customized LibFSes (8 threads), Kops/s";
  let threads = 8 in
  let posix_fses = [ "ext4"; "nova"; "winefs"; "odinfs"; "arckfs" ] in
  sub "Webproxy (KVFS's target workload)";
  List.iter
    (fun name ->
      let v =
        eight_node_rig (fun rig ->
            let fs = Rig.mount_fs ~store_data:false rig name in
            let p = Filebench.find "webproxy" in
            let r = Filebench.run rig fs p ~threads ~max_ops:8000 ~max_ns:30.0e6 () in
            r.Runner.ops_per_us *. 1000.0)
      in
      Printf.printf "%-14s%10.2f\n" name v)
    posix_fses;
  let kv_result =
    eight_node_rig (fun rig ->
        let libfs = Rig.mount_arckfs ~delegated:true rig in
        match Kvfs.mount libfs ~dir:"/kv" with
        | Error _ -> 0.0
        | Ok kv ->
          let r = Filebench.run_kv_webproxy rig kv ~threads ~max_ops:8000 ~max_ns:30.0e6 () in
          r.Runner.ops_per_us *. 1000.0)
  in
  Printf.printf "%-14s%10.2f\n" "kvfs" kv_result;
  sub "Varmail with 20-deep directories (FPFS's target workload)";
  List.iter
    (fun name ->
      let v =
        eight_node_rig (fun rig ->
            let fs = Rig.mount_fs ~store_data:false rig name in
            let p = Filebench.find "varmail-deep" in
            let r = Filebench.run rig fs p ~threads ~max_ops:8000 ~max_ns:30.0e6 () in
            r.Runner.ops_per_us *. 1000.0)
      in
      Printf.printf "%-14s%10.2f\n" name v)
    (posix_fses @ [ "fpfs" ])

(* ------------------------------------------------------------------ *)
(* §6.5: integrity *)

let sec65 () =
  section "Section 6.5: metadata integrity under attacks";
  sub "handcrafted malicious-LibFS attacks";
  List.iter
    (fun o -> Format.printf "  %a@." Trio_attacks.Attacks.pp_outcome o)
    (Trio_attacks.Attacks.run_handcrafted ());
  sub "scripted corruption campaign (buggy LibFS emulation)";
  let seeds = if !fast then 4 else 17 in
  let r = Trio_attacks.Attacks.run_campaign ~seeds () in
  Printf.printf "  scenarios: %d   detected-or-benign: %d   consistent afterwards: %d\n"
    r.Trio_attacks.Attacks.c_total r.Trio_attacks.Attacks.c_detected
    r.Trio_attacks.Attacks.c_consistent

(* ------------------------------------------------------------------ *)
(* Descriptive tables *)

let meta () =
  section "Table 2: FxMark metadata microbenchmarks";
  List.iter (fun (n, d) -> Printf.printf "  %-6s %s\n" n d) Fxmark.descriptions;
  section "Table 4: Filebench configurations (scaled per DESIGN.md)";
  Printf.printf "  %-14s %8s %12s %10s %10s %6s\n" "name" "files/th" "avg size" "read sz"
    "write sz" "depth";
  List.iter
    (fun p ->
      Printf.printf "  %-14s %8d %12d %10d %10d %6d\n" p.Filebench.p_name p.Filebench.p_nfiles
        p.Filebench.p_avg_size p.Filebench.p_io_read p.Filebench.p_io_write
        p.Filebench.p_dir_depth)
    Filebench.personalities

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock microbenchmarks *)

let micro () =
  section "Bechamel microbenchmarks (wall clock, host machine)";
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"radix-insert-1k"
        (Staged.stage (fun () ->
             let r = Trio_util.Radix.create () in
             for i = 0 to 999 do
               Trio_util.Radix.insert r (i * 37) i
             done));
      Test.make ~name:"htbl-insert-1k"
        (Staged.stage (fun () ->
             let h = Trio_util.Htbl.create_string () in
             for i = 0 to 999 do
               Trio_util.Htbl.replace h (string_of_int i) i
             done));
      Test.make ~name:"extent-alloc-free-1k"
        (Staged.stage (fun () ->
             let a = Trio_util.Extent_alloc.create ~start:0 ~len:100_000 in
             for _ = 0 to 999 do
               let p = Trio_util.Extent_alloc.alloc a 4 in
               Trio_util.Extent_alloc.free a p 4
             done));
      (let buf = Bytes.make 4096 'x' in
       Test.make ~name:"crc32-4k" (Staged.stage (fun () -> ignore (Trio_util.Crc32.of_bytes buf))));
      (let inode =
         {
           Trio_core.Layout.ino = 7;
           ftype = Trio_core.Fs_types.Reg;
           mode = 0o644;
           uid = 0;
           gid = 0;
           size = 4096;
           index_head = 9;
           mtime = 0;
           ctime = 0;
         }
       in
       Test.make ~name:"dentry-encode-decode"
         (Staged.stage (fun () ->
              let b = Trio_core.Layout.encode_dentry ~inode ~name:"some-file.txt" () in
              ignore (Trio_core.Layout.decode_dentry b))));
      Test.make ~name:"sim-10k-events"
        (Staged.stage (fun () ->
             let s = Sched.create () in
             for i = 0 to 9 do
               Sched.spawn s (fun () ->
                   for _ = 0 to 999 do
                     Sched.delay (float_of_int (i + 1))
                   done)
             done;
             ignore (Sched.run s)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/op\n%!" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out *)

let ablation () =
  section "Ablations";
  (* 1. data striping granularity *)
  sub "striping granularity: 2MB reads, 28 threads, 8 nodes (GiB/s)";
  List.iter
    (fun stripe_pages ->
      let v =
        Rig.run ~nodes:paper_nodes ~cpus_per_node:paper_cpus ~pages_per_node:(1 lsl 19)
          ~store_data:false ~stripe_pages (fun rig ->
            let fs = Rig.mount_fs ~store_data:false rig "arckfs" in
            let config =
              { Fio.threads = 28; block_size = 2 * 1024 * 1024; file_size = 16 * 1024 * 1024;
                kind = Fio.Read }
            in
            (Fio.run rig fs config ~max_ops:3000 ~max_ns:10.0e6 ()).Runner.gib_per_s)
      in
      Printf.printf "  stripe %4d KiB: %8.2f
%!" (stripe_pages * 4) v)
    [ 4; 16; 64; 512 ];
  (* 2. delegation threads per node *)
  sub "delegation threads per node: 4KB writes, 224 threads (GiB/s)";
  List.iter
    (fun tpn ->
      let v =
        Rig.run ~nodes:paper_nodes ~cpus_per_node:paper_cpus ~pages_per_node:(1 lsl 19)
          ~store_data:false ~threads_per_node:tpn (fun rig ->
            let fs = Rig.mount_fs ~store_data:false rig "arckfs" in
            let config =
              { Fio.threads = 224; block_size = 4096; file_size = 4 * 1024 * 1024;
                kind = Fio.Write }
            in
            (Fio.run rig fs config ~max_ops:12000 ~max_ns:10.0e6 ()).Runner.gib_per_s)
      in
      Printf.printf "  %2d threads/node: %8.2f
%!" tpn v)
    [ 2; 6; 12; 24 ];
  (* 3. lease length vs sharing overhead *)
  sub "lease length: contended 4KB writes to a shared 128MiB file (GiB/s)";
  List.iter
    (fun lease_ms ->
      let v =
        Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:(1 lsl 16) ~store_data:false
          ~lease_ns:(lease_ms *. 1e6) (fun rig ->
            let mk proc =
              Libfs.mount ~ctl:rig.Rig.ctl ~proc
                ~cred:{ Trio_core.Fs_types.uid = 1000; gid = 1000 } ()
            in
            let a = mk 341 and b = mk 342 in
            let aops = Libfs.ops a and bops = Libfs.ops b in
            ignore (get_ok "create" (aops.Fs.create "/shared" 0o666));
            get_ok "truncate" (aops.Fs.truncate "/shared" share_file_large);
            Libfs.unmap_everything a;
            let fda = get_ok "open" (aops.Fs.open_ "/shared" [ Trio_core.Fs_types.O_RDWR ]) in
            let fdb = get_ok "open" (bops.Fs.open_ "/shared" [ Trio_core.Fs_types.O_RDWR ]) in
            write_sharing_body rig ~file_size:share_file_large ~ops_of:(fun tid ->
                if tid = 0 then (aops, fda) else (bops, fdb)))
      in
      Printf.printf "  lease %5.1f ms: %8.3f
%!" lease_ms v)
    [ 2.0; 6.0; 12.5; 25.0; 50.0 ];
  (* 4. verifier cost vs directory size *)
  sub "verifier cost vs directory size (virtual us per verification)";
  List.iter
    (fun entries ->
      let v =
        Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:(1 lsl 16) ~store_data:false
          (fun rig ->
            let libfs = Rig.mount_arckfs ~delegated:false rig in
            let fs = Libfs.ops libfs in
            get_ok "mkdir" (fs.Fs.mkdir "/dir" 0o755);
            for i = 0 to entries - 1 do
              ignore (get_ok "create" (fs.Fs.create (Printf.sprintf "/dir/f%05d" i) 0o644))
            done;
            let before = Stats.get (Controller.stats rig.Rig.ctl) "verify" in
            Libfs.unmap_everything libfs;
            (Stats.get (Controller.stats rig.Rig.ctl) "verify" -. before) /. 1e3)
      in
      Printf.printf "  %5d entries: %8.1f us
%!" entries v)
    [ 10; 100; 1000 ];
  (* 5. device profile: Trio is not Optane-specific *)
  sub "CXL-class NVM profile (no write collapse): create scalability, ops/us";
  List.iter
    (fun threads ->
      let v =
        let sched = Sched.create () in
        let topo = Numa.create ~nodes:paper_nodes ~cpus_per_node:paper_cpus in
        let pmem =
          Pmem.create ~sched ~topo ~profile:Trio_nvm.Perf.cxl_nvm ~pages_per_node:(1 lsl 19)
            ~store_data:false ()
        in
        let mmu = Trio_core.Mmu.create pmem in
        let result = ref 0.0 in
        Sched.spawn sched (fun () ->
            let ctl = Controller.create ~sched ~pmem ~mmu () in
            let rig =
              {
                Rig.sched;
                topo;
                pmem;
                mmu;
                ctl;
                delegation = lazy (Arckfs.Delegation.create ~sched ~pmem ());
                next_proc = 400;
                mounts = [];
              }
            in
            let fs = Rig.mount_fs ~store_data:false rig "arckfs" in
            let r =
              Fxmark.run rig fs (Fxmark.find "MWCL") ~threads ~max_ops:12_000 ~max_ns:10.0e6 ()
            in
            result := r.Runner.ops_per_us);
        ignore (Sched.run sched);
        !result
      in
      Printf.printf "  %3d threads: %8.2f
%!" threads v)
    [ 1; 28; 224 ]

(* ------------------------------------------------------------------ *)
(* Shard scaling: controller-syscall throughput vs socket count *)

(* The same machine budget (8 CPUs, 64Ki pages) sliced into 1, 2 or 4
   sockets: more sockets means more per-socket page pools, registry
   shards, verifier fibers and NVM bandwidth domains, so the
   create/delete-heavy FxMark runs should get faster as the
   controller's planes spread out.  Emits BENCH_shard_scaling.json and
   exits non-zero if throughput is not monotonically increasing from
   1 to 4 sockets. *)
let shardscale () =
  section "Shard scaling: FxMark throughput vs simulated socket count";
  let total_cpus = 16 and total_pages = 1 lsl 16 in
  let threads = 16 in
  let sockets = [ 1; 2; 4 ] in
  let run_point bench nodes =
    (* unmap-after-write puts the controller on the critical path of
       every operation (each create/unlink hands the directory back),
       and the full-walk verify mode makes each handoff re-read the
       whole directory — so throughput is bounded by the verification
       plane's aggregate device bandwidth and fiber parallelism, the
       two resources the per-socket shards multiply. *)
    let prev = Controller.current_verify_mode () in
    Controller.set_verify_mode Controller.Full;
    Fun.protect ~finally:(fun () -> Controller.set_verify_mode prev) @@ fun () ->
    Rig.run ~nodes ~cpus_per_node:(total_cpus / nodes) ~pages_per_node:(total_pages / nodes)
      ~store_data:false (fun rig ->
        let fs =
          Vfs.wrap ~sched:rig.Rig.sched
            (Libfs.ops (Rig.mount_arckfs ~delegated:true ~unmap_after_write:true rig))
        in
        let max_ops = if !fast then 3000 else 12_000 in
        let r = Fxmark.run rig fs bench ~threads ~max_ops ~max_ns:10.0e6 () in
        let cstats = Controller.stats rig.Rig.ctl in
        Printf.printf "  [%d sockets] ops=%d map=%.0fus unmap=%.0fus verify=%.0fus\n%!" nodes
          r.Runner.ops
          (Stats.get cstats "map" /. 1e3)
          (Stats.get cstats "unmap" /. 1e3)
          (Stats.get cstats "verify" /. 1e3);
        r.Runner.ops_per_us)
  in
  let results =
    List.map
      (fun name ->
        let bench = Fxmark.find name in
        (name, List.map (fun n -> (n, run_point bench n)) sockets))
      [ "MWCL"; "MWUL" ]
  in
  print_header "bench" (List.map (fun n -> Printf.sprintf "%d-socket" n) sockets);
  List.iter (fun (name, points) -> print_row name (List.map snd points)) results;
  let monotone points =
    let rec ok = function (_, a) :: ((_, b) :: _ as rest) -> a < b && ok rest | _ -> true in
    ok points
  in
  let all_ok = List.for_all (fun (_, points) -> monotone points) results in
  let oc = open_out "BENCH_shard_scaling.json" in
  Printf.fprintf oc "{\n  \"bench\": \"shard_scaling\",\n  \"threads\": %d,\n" threads;
  Printf.fprintf oc "  \"total_cpus\": %d,\n  \"total_pages\": %d,\n" total_cpus total_pages;
  Printf.fprintf oc "  \"workloads\": [\n";
  List.iteri
    (fun i (name, points) ->
      Printf.fprintf oc "    { \"name\": %S, \"points\": [ " name;
      List.iteri
        (fun j (n, v) ->
          Printf.fprintf oc "%s{ \"sockets\": %d, \"ops_per_us\": %.4f }"
            (if j > 0 then ", " else "")
            n v)
        points;
      Printf.fprintf oc " ] }%s\n" (if i < List.length results - 1 then "," else ""))
    results;
  Printf.fprintf oc "  ],\n  \"monotonic\": %b\n}\n" all_ok;
  close_out oc;
  Printf.printf "wrote BENCH_shard_scaling.json (monotonic: %b)\n" all_ok;
  if not all_ok then begin
    Printf.eprintf "FAILED: throughput not monotonically increasing with socket count\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Ring batching: the submission/completion ring vs per-op syscalls *)

(* Create/open/delete-heavy workload with [unmap_after_write], so every
   operation remaps and hands back its directory: the controller sits on
   the critical path of each op.  The batched plane moves the unmap
   (fire-and-forget) and its verification settle off that path and
   amortizes the kernel crossing over the drained batch; the gate
   requires batched >= 1.5x synchronous at >= 32 concurrent processes.
   Emits BENCH_ring_batching.json. *)
let ringbatch () =
  section "Ring batching: create/delete-heavy ops/us, sync vs batched syscall plane";
  let depth = 32 in
  let proc_counts = if !fast then [ 10; 32 ] else [ 10; 32; 100 ] in
  let run_point ~ring nprocs =
    Rig.run ~nodes:2 ~cpus_per_node:8 ~pages_per_node:(1 lsl 16) ~store_data:false (fun rig ->
        (* One LibFS per process, each working in a private directory so
           the measurement is ring-vs-sync, not lease ping-pong. *)
        let fss =
          Array.init nprocs (fun _ ->
              Libfs.ops
                (Rig.mount_arckfs ~delegated:true ~unmap_after_write:true
                   ?ring:(if ring then Some depth else None) rig))
        in
        Array.iteri
          (fun i fs -> ignore (get_ok "mkdir" (fs.Fs.mkdir (Printf.sprintf "/rb%d" i) 0o755)))
          fss;
        let counters = Array.make nprocs 0 in
        let max_ops = if !fast then 4000 else 12_000 in
        let r =
          Runner.run ~sched:rig.Rig.sched ~topo:rig.Rig.topo ~threads:nprocs ~max_ops
            ~max_ns:20.0e6
            ~body:(fun ~tid ->
              let fs = fss.(tid) in
              let n = counters.(tid) in
              counters.(tid) <- n + 1;
              let path = Printf.sprintf "/rb%d/f%d" tid n in
              (match fs.Fs.create path 0o644 with
              | Ok fd ->
                ignore (fs.Fs.close fd);
                ignore (fs.Fs.unlink path)
              | Error _ -> ());
              0)
            ()
        in
        Printf.printf "  [%3d procs, %s] ops=%d %.4f ops/us\n%!" nprocs
          (if ring then "ring" else "sync")
          r.Runner.ops r.Runner.ops_per_us;
        r.Runner.ops_per_us)
  in
  let points =
    List.map
      (fun n ->
        let sync = run_point ~ring:false n in
        let batched = run_point ~ring:true n in
        (n, sync, batched, batched /. sync))
      proc_counts
  in
  print_header "procs" [ "sync"; "ring"; "speedup" ];
  List.iter
    (fun (n, sync, batched, sp) -> print_row (string_of_int n) [ sync; batched; sp ])
    points;
  let required = 1.5 in
  let pass =
    List.for_all (fun (n, _, _, sp) -> n < 32 || sp >= required) points
  in
  let oc = open_out "BENCH_ring_batching.json" in
  Printf.fprintf oc "{\n  \"bench\": \"ring_batching\",\n  \"ring_depth\": %d,\n" depth;
  Printf.fprintf oc "  \"workload\": \"create-close-unlink, unmap_after_write\",\n";
  Printf.fprintf oc "  \"points\": [\n";
  List.iteri
    (fun i (n, sync, batched, sp) ->
      Printf.fprintf oc
        "    { \"procs\": %d, \"sync_ops_per_us\": %.4f, \"ring_ops_per_us\": %.4f, \
         \"speedup\": %.3f }%s\n"
        n sync batched sp
        (if i < List.length points - 1 then "," else ""))
    points;
  Printf.fprintf oc "  ],\n  \"required_speedup\": %.2f,\n  \"pass\": %b\n}\n" required pass;
  close_out oc;
  Printf.printf "wrote BENCH_ring_batching.json (pass: %b)\n" pass;
  if not pass then begin
    Printf.eprintf "FAILED: batched plane under %.1fx of synchronous at >= 32 processes\n"
      required;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Snapshot recovery: mount-the-newest-intact-root vs the fsck walk *)

(* Crash recovery cost (virtual time): validating and mounting the
   newest snapshot root is O(snapshot payload), while the fallback is a
   full fsck walk plus a Full-mode certification sweep over every file.
   Emits BENCH_snapshot_recovery.json; the gate requires the root mount
   to be >= 5x faster. *)
let snaprecover () =
  section "Snapshot recovery: mount-last-valid-root vs full fsck walk + audit";
  let files = if !fast then 60 else 200 in
  let dirs = 8 in
  Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:65536 ~store_data:true (fun rig ->
      let sched = rig.Rig.sched and pmem = rig.Rig.pmem and ctl = rig.Rig.ctl in
      let libfs = Rig.mount_arckfs ~delegated:false rig in
      let fs = Libfs.ops libfs in
      for d = 0 to dirs - 1 do
        (match (fs.Fs.mkdir (Printf.sprintf "/d%d" d) 0o755 : (unit, _) result) with
        | Ok () -> ()
        | Error _ -> failwith "mkdir");
        for i = 0 to (files / dirs) - 1 do
          match
            Fs.write_file fs
              (Printf.sprintf "/d%d/f%03d" d i)
              (String.make ((i * 613 mod 7000) + 64) 'r')
          with
          | Ok () -> ()
          | Error _ -> failwith "write"
        done
      done;
      Libfs.unmap_everything libfs;
      let epoch =
        match Controller.snapshot_take ctl with
        | Ok e -> e
        | Error _ -> failwith "snapshot_take"
      in
      (* the crash: DRAM dies, a fresh controller recovers from NVM *)
      let time f =
        let t0 = Sched.now sched in
        let v = f () in
        (v, Sched.now sched -. t0)
      in
      let (n_root, root_ns) =
        time (fun () ->
            let mmu = Trio_core.Mmu.create pmem in
            match Controller.recover ~sched ~pmem ~mmu () with
            | Ok (ctl', Controller.Mounted_root e) when e = epoch ->
              Trio_core.Ctl_state.fold_files ctl' (fun _ _ n -> n + 1) 0
            | Ok (_, Controller.Mounted_root e) ->
              failwith (Printf.sprintf "mounted epoch %d, expected %d" e epoch)
            | Ok (_, Controller.Fsck_fallback) -> failwith "unexpected fsck fallback"
            | Error m -> failwith m)
      in
      let (n_fsck, fsck_ns) =
        time (fun () ->
            let mmu = Trio_core.Mmu.create pmem in
            match Controller.cold_start ~sched ~pmem ~mmu () with
            | Error m -> failwith m
            | Ok ctl' ->
              let checked, bad = Controller.audit_all ctl' in
              if bad > 0 then failwith (Printf.sprintf "%d files fail certification" bad);
              checked)
      in
      if n_root <> n_fsck then
        Printf.printf "  note: root mount sees %d files, fsck walk %d\n" n_root n_fsck;
      let speedup = fsck_ns /. root_ns in
      print_header "path" [ "virtual us"; "files" ];
      print_row "mount-root" [ root_ns /. 1e3; float_of_int n_root ];
      print_row "fsck+audit" [ fsck_ns /. 1e3; float_of_int n_fsck ];
      Printf.printf "  recovery-to-root speedup: %.1fx\n" speedup;
      let required = 5.0 in
      let pass = speedup >= required in
      let oc = open_out "BENCH_snapshot_recovery.json" in
      Printf.fprintf oc "{\n  \"bench\": \"snapshot_recovery\",\n";
      Printf.fprintf oc "  \"files\": %d,\n  \"snapshot_epoch\": %d,\n" files epoch;
      Printf.fprintf oc "  \"mount_root_us\": %.3f,\n  \"fsck_audit_us\": %.3f,\n"
        (root_ns /. 1e3) (fsck_ns /. 1e3);
      Printf.fprintf oc "  \"speedup\": %.3f,\n  \"required_speedup\": %.2f,\n  \"pass\": %b\n}\n"
        speedup required pass;
      close_out oc;
      Printf.printf "wrote BENCH_snapshot_recovery.json (pass: %b)\n" pass;
      if not pass then begin
        Printf.eprintf "FAILED: root mount under %.1fx of the fsck walk\n" required;
        exit 1
      end;
      0)
  |> ignore

(* ------------------------------------------------------------------ *)
(* Multi-tenant QoS: noisy-neighbour isolation *)

(* Two honest YCSB tenants (A and C) run twice on identical rigs: once
   alone, once sharing the machine with a byzantine noisy neighbour
   (tight create/corrupt/unmap loop on a starvation share) and a
   kill-prone bulk tenant that is SIGKILLed mid-run.  The QoS plane
   throttles the attackers, the watchdog reclaims the corpse, and the
   gate requires every honest tenant's p99 under attack to stay within
   2x of its all-honest baseline — with zero honest errors and a
   balanced page ledger after reclamation.  Emits
   BENCH_tenant_isolation.json. *)
let qos () =
  section "Multi-tenant QoS: honest tail latency under byzantine/SIGKILL neighbours";
  let records = if !fast then 32 else 64 in
  let ops = if !fast then 40 else 120 in
  let honest_specs =
    [ Ycsb.spec ~share:1.0 ~ops "honest-a" Ycsb.A;
      Ycsb.spec ~share:1.0 ~ops "honest-c" Ycsb.C ]
  in
  let run ~attack =
    Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:(1 lsl 14) ~store_data:true
      (fun rig ->
        let specs =
          honest_specs
          @
          if attack then
            [ Ycsb.spec ~share:0.1 ~ops:(ops * 4) ~kill_after:(ops * 3) "killer" Ycsb.A ]
          else []
        in
        let chaos, neighbor =
          if attack then begin
            let nb = Attacks.noisy_neighbor ~qos_share:0.02 rig in
            ([ Attacks.neighbor_fiber nb ], Some nb)
          end
          else ([], None)
        in
        let results = Ycsb.run rig ~records ~value_size:32 ~chaos specs in
        List.iter (fun r -> Format.printf "  %a@." Ycsb.pp_tenant_result r) results;
        (match neighbor with
        | Some nb ->
          Printf.printf "  neighbour: %d byzantine cycles (%d rejected)\n%!"
            nb.Attacks.nb_cycles nb.Attacks.nb_rejected
        | None -> ());
        let gc_ok =
          if attack then begin
            (* Reclaim the killed tenant and audit the page ledger. *)
            let ctl = rig.Rig.ctl in
            Sched.delay 2.0e6;
            let escalated = Controller.watchdog_once ctl ~timeout_ns:1.0e6 in
            ignore (Controller.drain_unverified ctl : int);
            let gc = Controller.gc_once ctl in
            Printf.printf
              "  reclaim: watchdog escalated %d, gc reclaimed %d page(s), ledger %s\n%!"
              (List.length escalated) gc.Controller.gc_reclaimed_pages
              (if gc.Controller.gc_invariant_ok then "balanced" else "IMBALANCED");
            gc.Controller.gc_invariant_ok && gc.Controller.gc_leaked = 0
          end
          else true
        in
        (results, gc_ok))
  in
  sub "baseline: honest tenants only";
  let baseline, _ = run ~attack:false in
  sub "under attack: + byzantine neighbour (share 0.02) + kill-prone tenant (share 0.1)";
  let attacked, gc_ok = run ~attack:true in
  let honest_of results name =
    List.find (fun r -> r.Ycsb.y_name = name) results
  in
  let rows =
    List.map
      (fun s ->
        let b = honest_of baseline s.Ycsb.s_name
        and a = honest_of attacked s.Ycsb.s_name in
        (s.Ycsb.s_name, b, a, a.Ycsb.y_p99 /. Float.max 1.0 b.Ycsb.y_p99))
      honest_specs
  in
  print_header "tenant" [ "base p50"; "base p99"; "atk p50"; "atk p99"; "ratio" ];
  List.iter
    (fun (name, b, a, ratio) ->
      print_row name [ b.Ycsb.y_p50; b.Ycsb.y_p99; a.Ycsb.y_p50; a.Ycsb.y_p99; ratio ])
    rows;
  let required = 2.0 in
  let honest_clean =
    List.for_all
      (fun (_, b, a, _) ->
        b.Ycsb.y_errors = 0 && a.Ycsb.y_errors = 0 && (not a.Ycsb.y_killed)
        && a.Ycsb.y_ops_done = b.Ycsb.y_ops_done)
      rows
  in
  let killer = honest_of attacked "killer" in
  let pass =
    List.for_all (fun (_, _, _, ratio) -> ratio <= required) rows
    && honest_clean && killer.Ycsb.y_killed && gc_ok
  in
  let oc = open_out "BENCH_tenant_isolation.json" in
  Printf.fprintf oc "{\n  \"bench\": \"tenant_isolation\",\n";
  Printf.fprintf oc "  \"records\": %d,\n  \"ops_per_tenant\": %d,\n" records ops;
  Printf.fprintf oc "  \"tenants\": [\n";
  List.iteri
    (fun i (name, b, a, ratio) ->
      Printf.fprintf oc
        "    { \"tenant\": %S, \"baseline_p99_ns\": %.0f, \"attacked_p99_ns\": %.0f, \
         \"ratio\": %.3f }%s\n"
        name b.Ycsb.y_p99 a.Ycsb.y_p99 ratio
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ],\n  \"killer_killed\": %b,\n  \"gc_balanced\": %b,\n"
    killer.Ycsb.y_killed gc_ok;
  Printf.fprintf oc "  \"required_ratio\": %.2f,\n  \"pass\": %b\n}\n" required pass;
  close_out oc;
  Printf.printf "wrote BENCH_tenant_isolation.json (pass: %b)\n" pass;
  if not pass then begin
    Printf.eprintf
      "FAILED: honest p99 above %.1fx baseline (or reclamation failed) under attack\n"
      required;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Directory scaling: B-link index vs linear dentry-page scan *)

(* Two sweeps.  (1) End-to-end: one directory grown to 10^3..10^5
   entries; create/lookup/readdir/delete are timed in virtual ns from a
   second, cold-cache process after the sharing point.  The lookup
   baseline re-runs the probes on an unindexed twin of the same
   directory (index maintenance off, so the root word stays 0 — a legal
   state the verifier certifies), which makes the comparison index
   descent vs linear scan over identical dentry layouts.  (2) Raw tree:
   the bare B-link structure driven to 10^6 keys — pushing a million
   *files* through the sharing point would mostly measure the simulated
   kernel shadowing a million checkpoints, so the top decade isolates
   the index itself.  Emits BENCH_dirscale.json; the gate requires the
   index >= 10x the scan at the largest end-to-end size, sub-linear
   lookup growth per decade in both sweeps, and readdir served by an
   index range scan. *)
let dirscale () =
  section "Directory scaling: B-link index vs linear dentry scan";
  let sizes = if !fast then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ] in
  let baseline_max = 100_000 in
  let name_of i = Printf.sprintf "/big/f%07d" i in
  let run_point ~indexed n =
    let ppn = 1 lsl 14 in
    Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:ppn ~store_data:false (fun rig ->
        let sched = rig.Rig.sched in
        if not indexed then Libfs.set_skip_index_updates true;
        Fun.protect ~finally:(fun () -> Libfs.set_skip_index_updates false) @@ fun () ->
        let writer = Rig.mount_arckfs ~delegated:false rig in
        let fs = Libfs.ops writer in
        ignore (get_ok "mkdir" (fs.Fs.mkdir "/big" 0o755));
        let t0 = Sched.now sched in
        for i = 0 to n - 1 do
          match fs.Fs.create (name_of i) 0o644 with
          | Ok fd -> ignore (fs.Fs.close fd)
          | Error e -> failwith ("create: " ^ Trio_core.Fs_types.errno_to_string e)
        done;
        let create_ns = (Sched.now sched -. t0) /. float_of_int n in
        (* the sharing point: hand the directory to the kernel, then
           measure from a second process whose caches start cold *)
        Libfs.unmap_everything writer;
        let fs2 = Libfs.ops (Rig.mount_arckfs ~delegated:false rig) in
        (* distinct, evenly spread names: the aux table never serves a
           probe twice, so every stat pays the real resolution path *)
        let probes = if n >= 100_000 then 8 else if n >= 10_000 then 16 else 32 in
        let step = n / probes in
        (* one untimed stat first: it pays the one-time open cost of the
           cold directory (kernel map of every dentry page + aux
           skeleton), which is the same for both configurations and not
           what this experiment measures *)
        ignore (get_ok "warmup" (fs2.Fs.stat (name_of (n - 1))));
        let i = ref 0 in
        let lookup_ns =
          Runner.time_op ~sched ~iters:probes (fun () ->
              let name = name_of (!i * step) in
              incr i;
              ignore (get_ok "stat" (fs2.Fs.stat name)))
        in
        if not indexed then (create_ns, lookup_ns, 0.0, false, 0.0)
        else begin
          let cstats = Controller.stats rig.Rig.ctl in
          let scans0 = Stats.get cstats "verify.dindex.range_scans" in
          let t0 = Sched.now sched in
          let listed = List.length (get_ok "readdir" (fs2.Fs.readdir "/big")) in
          let readdir_ns = Sched.now sched -. t0 in
          if listed <> n then failwith (Printf.sprintf "readdir returned %d of %d" listed n);
          let range_scan = Stats.get cstats "verify.dindex.range_scans" > scans0 in
          let dels = min (n / 2) 512 in
          let i = ref 0 in
          let delete_ns =
            Runner.time_op ~sched ~iters:dels (fun () ->
                (* odd offsets: never a name the probe loop cached *)
                let name = name_of ((!i * 2) + 1) in
                incr i;
                ignore (get_ok "unlink" (fs2.Fs.unlink name)))
          in
          (create_ns, lookup_ns, readdir_ns, range_scan, delete_ns)
        end)
  in
  let points =
    List.map
      (fun n ->
        let create_ns, lookup_ns, readdir_ns, range_scan, delete_ns =
          run_point ~indexed:true n
        in
        let baseline_ns =
          if n <= baseline_max then
            let _, b, _, _, _ = run_point ~indexed:false n in
            Some b
          else None
        in
        let speedup = Option.map (fun b -> b /. lookup_ns) baseline_ns in
        Printf.printf
          "  [%7d entries] create %.0fns  lookup %.0fns  scan %s  readdir %.0fus (range scan \
           %b)  delete %.0fns\n%!"
          n create_ns lookup_ns
          (match baseline_ns with Some b -> Printf.sprintf "%.0fns" b | None -> "-")
          (readdir_ns /. 1e3) range_scan delete_ns;
        (n, create_ns, lookup_ns, baseline_ns, speedup, readdir_ns, range_scan, delete_ns))
      sizes
  in
  print_header "entries" [ "create"; "lookup"; "scan"; "speedup" ];
  List.iter
    (fun (n, c, l, b, sp, _, _, _) ->
      print_row (string_of_int n)
        [ c; l; Option.value ~default:0.0 b; Option.value ~default:0.0 sp ])
    points;
  let required = 10.0 in
  (* gate 1: at the largest baselined size, descent beats the scan 10x *)
  let gate_speedup =
    match
      List.filter_map (fun (n, _, _, _, sp, _, _, _) -> Option.map (fun s -> (n, s)) sp) points
      |> List.rev
    with
    | (_, s) :: _ -> s >= required
    | [] -> false
  in
  (* gate 2: indexed lookup grows sub-linearly — each 10x in entries
     costs well under 10x in latency *)
  let rec sublinear = function
    | (_, _, a, _, _, _, _, _) :: ((_, _, b, _, _, _, _, _) :: _ as rest) ->
      b < a *. 5.0 && sublinear rest
    | _ -> true
  in
  let gate_sublinear = sublinear points in
  (* gate 3: every readdir was served by an index range scan *)
  let gate_range = List.for_all (fun (_, _, _, _, _, _, rs, _) -> rs) points in
  (* raw-tree sweep: insert/lookup latency on the bare B-link structure
     up to 10^6 keys, pool carved from the top half of the device (the
     controller's extent allocators never reach up there) *)
  let tree_sizes = if !fast then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000; 1_000_000 ] in
  let tree_point n =
    (* split-born leaves sit around 70% full, so budget ~n/118 leaf
       pages in the top half of the device *)
    let ppn = if n >= 1_000_000 then 1 lsl 14 else 1 lsl 11 in
    Rig.run ~nodes:2 ~cpus_per_node:4 ~pages_per_node:ppn ~store_data:false (fun rig ->
        let sched = rig.Rig.sched and pm = rig.Rig.pmem in
        let actor = Pmem.kernel_actor in
        let total = Pmem.total_pages pm in
        let next = ref (total / 2) and freed = ref [] in
        let alloc () =
          match !freed with
          | pg :: rest ->
            freed := rest;
            Some pg
          | [] ->
            if !next >= total then None
            else begin
              let pg = !next in
              incr next;
              Some pg
            end
        in
        let free pg = freed := pg :: !freed in
        (* multiplicative scramble: shuffled arrival order, rare
           duplicate hashes, same recipe as the unit tests *)
        let hash i = i * 2654435761 land 0xFFFFFFF in
        let root = ref 0 in
        let t0 = Sched.now sched in
        for i = 0 to n - 1 do
          match Dirindex.insert pm ~actor ~alloc ~free ~root:!root ~hash:(hash i) ~addr:i with
          | Ok (r, _fresh) -> root := r
          | Error `Nospace -> failwith "tree insert: out of space"
          | Error (`Damaged e) -> failwith ("tree insert: " ^ e)
        done;
        let insert_ns = (Sched.now sched -. t0) /. float_of_int n in
        let probes = 64 in
        let step = n / probes in
        let i = ref 0 in
        let lookup_ns =
          Runner.time_op ~sched ~iters:probes (fun () ->
              let h = hash (!i * step) in
              incr i;
              match Dirindex.lookup pm ~actor ~root:!root ~hash:h with
              | Ok (_ :: _) -> ()
              | Ok [] -> failwith "tree lookup: missing key"
              | Error e -> failwith ("tree lookup: " ^ e))
        in
        (n, insert_ns, lookup_ns))
  in
  let tree_points =
    List.map
      (fun n ->
        let (_, ins, lk) as p = tree_point n in
        Printf.printf "  [tree %7d keys] insert %.0fns  lookup %.0fns\n%!" n ins lk;
        p)
      tree_sizes
  in
  print_header "tree keys" [ "insert"; "lookup" ];
  List.iter (fun (n, ins, lk) -> print_row (string_of_int n) [ ins; lk ]) tree_points;
  (* gate 4: the bare tree's lookup also grows sub-linearly per decade,
     all the way to 10^6 *)
  let rec tree_sublinear = function
    | (_, _, a) :: ((_, _, b) :: _ as rest) -> b < a *. 5.0 && tree_sublinear rest
    | _ -> true
  in
  let gate_tree = tree_sublinear tree_points in
  let pass = gate_speedup && gate_sublinear && gate_range && gate_tree in
  let oc = open_out "BENCH_dirscale.json" in
  Printf.fprintf oc "{\n  \"bench\": \"dirscale\",\n";
  Printf.fprintf oc "  \"workload\": \"one directory, create/lookup/readdir/delete\",\n";
  Printf.fprintf oc "  \"points\": [\n";
  List.iteri
    (fun i (n, c, l, b, sp, rd, rs, d) ->
      Printf.fprintf oc
        "    { \"entries\": %d, \"create_ns\": %.1f, \"lookup_ns\": %.1f, \
         \"linear_scan_ns\": %s, \"speedup\": %s, \"readdir_ns\": %.1f, \
         \"readdir_range_scan\": %b, \"delete_ns\": %.1f }%s\n"
        n c l
        (match b with Some b -> Printf.sprintf "%.1f" b | None -> "null")
        (match sp with Some s -> Printf.sprintf "%.2f" s | None -> "null")
        rd rs d
        (if i < List.length points - 1 then "," else ""))
    points;
  Printf.fprintf oc "  ],\n  \"tree_points\": [\n";
  List.iteri
    (fun i (n, ins, lk) ->
      Printf.fprintf oc
        "    { \"keys\": %d, \"insert_ns\": %.1f, \"lookup_ns\": %.1f }%s\n" n ins lk
        (if i < List.length tree_points - 1 then "," else ""))
    tree_points;
  Printf.fprintf oc
    "  ],\n  \"required_speedup\": %.1f,\n  \"speedup_ok\": %b,\n  \"sublinear_ok\": %b,\n  \
     \"range_scan_ok\": %b,\n  \"tree_sublinear_ok\": %b,\n  \"pass\": %b\n}\n"
    required gate_speedup gate_sublinear gate_range gate_tree pass;
  close_out oc;
  Printf.printf "wrote BENCH_dirscale.json (pass: %b)\n" pass;
  if not pass then begin
    Printf.eprintf
      "FAILED: dirscale gate (speedup %b, sublinear %b, range-scan %b, tree %b)\n"
      gate_speedup gate_sublinear gate_range gate_tree;
    exit 1
  end

let experiments =
  [
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("tab3", tab3);
    ("fig8", fig8);
    ("fig8v", fig8v);
    ("fig9", fig9);
    ("tab5", tab5);
    ("fig10", fig10);
    ("sec65", sec65);
    ("shardscale", shardscale);
    ("dirscale", dirscale);
    ("ringbatch", ringbatch);
    ("snaprecover", snaprecover);
    ("qos", qos);
    ("ablation", ablation);
    ("meta", meta);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--fast" then begin
          fast := true;
          false
        end
        else true)
      args
  in
  let selected = if args = [] then List.map fst experiments else args in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let s = Unix.gettimeofday () in
        f ();
        Printf.printf "[%s took %.1fs]\n%!" name (Unix.gettimeofday () -. s)
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat " " (List.map fst experiments)))
    selected;
  Printf.printf "\nTotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
